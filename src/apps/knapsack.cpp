// 0/1 Knapsack solved with a genetic algorithm (paper Sec. IV: 24 items,
// weight limit 500).
//
// Characteristics: integer-only, heavy array/pointer use (the paper reports
// 42% execute-stage crash rate for Knapsack), and selection pressure that
// discards corrupted candidates — the later a fault lands, the likelier the
// population already carries a good solution, so acceptability grows with
// injection time (Fig. 6, middle).
#include "apps/app.hpp"
#include "apps/image.hpp"

#include <cstdio>
#include <vector>

namespace gemfi::apps {

namespace {

constexpr unsigned kItems = 24;
constexpr unsigned kPop = 16;
constexpr std::int64_t kLimit = 500;
constexpr std::uint64_t kMaskAll = (1u << kItems) - 1;

struct Items {
  std::vector<std::int64_t> value;
  std::vector<std::int64_t> weight;
};

Items make_items(std::uint64_t& state) {
  Items it;
  for (unsigned i = 0; i < kItems; ++i) {
    lcg_next(state);
    it.value.push_back(10 + std::int64_t((state >> 33) & 63));
    lcg_next(state);
    it.weight.push_back(1 + std::int64_t((state >> 33) & 63));
  }
  return it;
}

std::int64_t mask_weight(const Items& it, std::uint64_t mask) {
  std::int64_t w = 0;
  for (unsigned i = 0; i < kItems; ++i)
    if ((mask >> i) & 1) w += it.weight[i];
  return w;
}

std::int64_t mask_value(const Items& it, std::uint64_t mask) {
  std::int64_t v = 0;
  for (unsigned i = 0; i < kItems; ++i)
    if ((mask >> i) & 1) v += it.value[i];
  return v;
}

std::int64_t fitness(const Items& it, std::uint64_t mask) {
  return mask_weight(it, mask) <= kLimit ? mask_value(it, mask) : 0;
}

struct KnapGolden {
  std::string output;
  Items items;
  std::int64_t best_value = 0;
};

/// Host twin of the guest GA: identical LCG draw order.
KnapGolden golden_knapsack(std::uint64_t seed, unsigned generations) {
  std::uint64_t state = seed;
  KnapGolden g;
  g.items = make_items(state);

  std::vector<std::uint64_t> pop(kPop), next(kPop);
  for (unsigned i = 0; i < kPop; ++i) {
    lcg_next(state);
    pop[i] = (state >> 20) & kMaskAll;
  }

  std::vector<std::int64_t> fit(kPop);
  for (unsigned gen = 0; gen < generations; ++gen) {
    for (unsigned i = 0; i < kPop; ++i) fit[i] = fitness(g.items, pop[i]);
    unsigned best = 0;
    for (unsigned i = 1; i < kPop; ++i)
      if (fit[i] > fit[best]) best = i;
    next[0] = pop[best];
    for (unsigned c = 1; c < kPop; ++c) {
      lcg_next(state);
      const unsigned i1 = unsigned(state >> 20) & (kPop - 1);
      lcg_next(state);
      const unsigned i2 = unsigned(state >> 20) & (kPop - 1);
      const std::uint64_t p1 = fit[i1] >= fit[i2] ? pop[i1] : pop[i2];
      lcg_next(state);
      const unsigned i3 = unsigned(state >> 20) & (kPop - 1);
      lcg_next(state);
      const unsigned i4 = unsigned(state >> 20) & (kPop - 1);
      const std::uint64_t p2 = fit[i3] >= fit[i4] ? pop[i3] : pop[i4];
      lcg_next(state);
      const unsigned cp = unsigned(state >> 20) & 31;
      const std::uint64_t lo = (1ull << cp) - 1;
      std::uint64_t child = (p1 & lo) | (p2 & ~lo);
      lcg_next(state);
      if (((state >> 40) & 7) == 0) child ^= 1ull << (unsigned(state >> 20) & 31);
      next[c] = child & kMaskAll;
    }
    pop = next;
  }

  for (unsigned i = 0; i < kPop; ++i) fit[i] = fitness(g.items, pop[i]);
  unsigned best = 0;
  for (unsigned i = 1; i < kPop; ++i)
    if (fit[i] > fit[best]) best = i;
  g.best_value = fit[best];
  char buf[96];
  std::snprintf(buf, sizeof buf, "value=%lld\nweight=%lld\nmask=%llu\n",
                static_cast<long long>(fit[best]),
                static_cast<long long>(mask_weight(g.items, pop[best])),
                static_cast<unsigned long long>(pop[best]));
  g.output = buf;
  return g;
}

}  // namespace

App build_knapsack(const AppScale& scale) {
  using namespace assembler;
  const unsigned generations = scale.paper ? 100 : 30;
  const std::uint64_t seed = scale.seed ^ 0x5ac;

  Assembler as;
  const DataRef values_ref = as.data_zeros(kItems * 8);
  const DataRef weights_ref = as.data_zeros(kItems * 8);
  const DataRef pop_ref = as.data_zeros(kPop * 8);
  const DataRef next_ref = as.data_zeros(kPop * 8);
  const DataRef fit_ref = as.data_zeros(kPop * 8);

  const Label entry = as.make_label("main");
  const Label fn_fitness = as.make_label("fitness");

  // ---- fitness(a0=mask) -> v0 (0 if overweight); t11 = weight.
  // Clobbers t0-t3, t10, t11.
  {
    as.bind(fn_fitness);
    as.li(reg::v0, 0);   // value sum
    as.li(reg::t11, 0);  // weight sum
    as.li(reg::t10, 0);  // i
    const Label loop = as.here();
    {
      as.srl(reg::a0, reg::t10, reg::t0);
      const Label skip = as.make_label();
      as.blbc(reg::t0, skip);
      as.la(reg::t2, values_ref);
      as.s8addq(reg::t10, reg::t2, reg::t1);
      as.ldq(reg::t1, 0, reg::t1);
      as.addq(reg::v0, reg::t1, reg::v0);
      as.la(reg::t2, weights_ref);
      as.s8addq(reg::t10, reg::t2, reg::t1);
      as.ldq(reg::t1, 0, reg::t1);
      as.addq(reg::t11, reg::t1, reg::t11);
      as.bind(skip);
      as.addq_i(reg::t10, 1, reg::t10);
      as.cmplt_i(reg::t10, kItems, reg::t0);
      as.bne(reg::t0, loop);
    }
    as.li(reg::t2, kLimit);
    as.cmple(reg::t11, reg::t2, reg::t0);  // feasible?
    as.cmoveq(reg::t0, reg::zero, reg::v0);  // infeasible -> fitness 0
    as.ret();
  }

  as.bind(entry);
  emit_boot(as);

  // ---------------- init phase ----------------
  as.li_u(reg::s1, seed);
  // items
  as.li(reg::s0, 0);
  const Label gen_items = as.here("gen_items");
  {
    emit_lcg_step(as, reg::s1, reg::t0);
    as.srl_i(reg::s1, 33, reg::t1);
    as.and_i(reg::t1, 63, reg::t1);
    as.addq_i(reg::t1, 10, reg::t1);
    as.la(reg::t2, values_ref);
    as.s8addq(reg::s0, reg::t2, reg::t3);
    as.stq(reg::t1, 0, reg::t3);
    emit_lcg_step(as, reg::s1, reg::t0);
    as.srl_i(reg::s1, 33, reg::t1);
    as.and_i(reg::t1, 63, reg::t1);
    as.addq_i(reg::t1, 1, reg::t1);
    as.la(reg::t2, weights_ref);
    as.s8addq(reg::s0, reg::t2, reg::t3);
    as.stq(reg::t1, 0, reg::t3);
    as.addq_i(reg::s0, 1, reg::s0);
    as.cmplt_i(reg::s0, kItems, reg::t0);
    as.bne(reg::t0, gen_items);
  }
  // initial population
  as.li(reg::s0, 0);
  const Label gen_pop = as.here("gen_pop");
  {
    emit_lcg_step(as, reg::s1, reg::t0);
    as.srl_i(reg::s1, 20, reg::t1);
    as.li(reg::t2, std::int64_t(kMaskAll));
    as.and_(reg::t1, reg::t2, reg::t1);
    as.la(reg::t2, pop_ref);
    as.s8addq(reg::s0, reg::t2, reg::t3);
    as.stq(reg::t1, 0, reg::t3);
    as.addq_i(reg::s0, 1, reg::s0);
    as.cmplt_i(reg::s0, kPop, reg::t0);
    as.bne(reg::t0, gen_pop);
  }

  as.fi_read_init();
  as.mov_i(0, reg::a0);
  as.fi_activate();

  // ---------------- kernel: the GA generations ----------------
  as.li(reg::s0, 0);  // generation
  const Label lgen = as.here("lgen");
  {
    // fitness of the whole population
    as.li(reg::s3, 0);
    const Label lfit = as.here("lfit");
    {
      as.la(reg::t2, pop_ref);
      as.s8addq(reg::s3, reg::t2, reg::t0);
      as.ldq(reg::a0, 0, reg::t0);
      as.call(fn_fitness);
      as.la(reg::t2, fit_ref);
      as.s8addq(reg::s3, reg::t2, reg::t0);
      as.stq(reg::v0, 0, reg::t0);
      as.addq_i(reg::s3, 1, reg::s3);
      as.cmplt_i(reg::s3, kPop, reg::t0);
      as.bne(reg::t0, lfit);
    }
    // best index -> s4
    as.li(reg::s4, 0);
    as.li(reg::s3, 1);
    const Label lbest = as.here("lbest");
    {
      as.la(reg::t2, fit_ref);
      as.s8addq(reg::s3, reg::t2, reg::t0);
      as.ldq(reg::t0, 0, reg::t0);
      as.s8addq(reg::s4, reg::t2, reg::t1);
      as.ldq(reg::t1, 0, reg::t1);
      as.cmplt(reg::t1, reg::t0, reg::t3);  // fit[best] < fit[i]?
      as.cmovne(reg::t3, reg::s3, reg::s4);
      as.addq_i(reg::s3, 1, reg::s3);
      as.cmplt_i(reg::s3, kPop, reg::t0);
      as.bne(reg::t0, lbest);
    }
    // elitism: next[0] = pop[best]
    as.la(reg::t2, pop_ref);
    as.s8addq(reg::s4, reg::t2, reg::t0);
    as.ldq(reg::t0, 0, reg::t0);
    as.la(reg::t2, next_ref);
    as.stq(reg::t0, 0, reg::t2);
    // offspring
    as.li(reg::s3, 1);  // c
    const Label lchild = as.here("lchild");
    {
      // tournament -> parent in s5 (helper emitted twice)
      const auto tournament = [&](unsigned dst) {
        emit_lcg_step(as, reg::s1, reg::t0);
        as.srl_i(reg::s1, 20, reg::t1);
        as.and_i(reg::t1, kPop - 1, reg::t8);  // i1
        emit_lcg_step(as, reg::s1, reg::t0);
        as.srl_i(reg::s1, 20, reg::t1);
        as.and_i(reg::t1, kPop - 1, reg::t9);  // i2
        as.la(reg::t2, fit_ref);
        as.s8addq(reg::t8, reg::t2, reg::t0);
        as.ldq(reg::t0, 0, reg::t0);  // fit[i1]
        as.s8addq(reg::t9, reg::t2, reg::t1);
        as.ldq(reg::t1, 0, reg::t1);  // fit[i2]
        as.cmple(reg::t1, reg::t0, reg::t3);   // fit[i2] <= fit[i1] -> pick i1
        as.cmoveq(reg::t3, reg::t9, reg::t8);  // else i2
        as.la(reg::t2, pop_ref);
        as.s8addq(reg::t8, reg::t2, reg::t0);
        as.ldq(dst, 0, reg::t0);
      };
      tournament(reg::s5);   // p1
      tournament(reg::t10);  // p2
      // crossover point
      emit_lcg_step(as, reg::s1, reg::t0);
      as.srl_i(reg::s1, 20, reg::t1);
      as.and_i(reg::t1, 31, reg::t1);     // cp
      as.li(reg::t2, 1);
      as.sll(reg::t2, reg::t1, reg::t2);
      as.subq_i(reg::t2, 1, reg::t2);     // lo mask
      as.and_(reg::s5, reg::t2, reg::t3);
      as.bic(reg::t10, reg::t2, reg::t8);
      as.bis(reg::t3, reg::t8, reg::t8);  // child
      // mutation
      emit_lcg_step(as, reg::s1, reg::t0);
      as.srl_i(reg::s1, 40, reg::t1);
      as.and_i(reg::t1, 7, reg::t1);
      const Label no_mut = as.make_label("no_mut");
      as.bne(reg::t1, no_mut);
      as.srl_i(reg::s1, 20, reg::t1);
      as.and_i(reg::t1, 31, reg::t1);
      as.li(reg::t2, 1);
      as.sll(reg::t2, reg::t1, reg::t2);
      as.xor_(reg::t8, reg::t2, reg::t8);
      as.bind(no_mut);
      as.li(reg::t2, std::int64_t(kMaskAll));
      as.and_(reg::t8, reg::t2, reg::t8);
      as.la(reg::t2, next_ref);
      as.s8addq(reg::s3, reg::t2, reg::t0);
      as.stq(reg::t8, 0, reg::t0);
      as.addq_i(reg::s3, 1, reg::s3);
      as.cmplt_i(reg::s3, kPop, reg::t0);
      as.bne(reg::t0, lchild);
    }
    // pop = next
    as.li(reg::s3, 0);
    const Label lcopy = as.here("lcopy");
    {
      as.la(reg::t2, next_ref);
      as.s8addq(reg::s3, reg::t2, reg::t0);
      as.ldq(reg::t0, 0, reg::t0);
      as.la(reg::t2, pop_ref);
      as.s8addq(reg::s3, reg::t2, reg::t1);
      as.stq(reg::t0, 0, reg::t1);
      as.addq_i(reg::s3, 1, reg::s3);
      as.cmplt_i(reg::s3, kPop, reg::t0);
      as.bne(reg::t0, lcopy);
    }
    as.addq_i(reg::s0, 1, reg::s0);
    as.cmplt_i(reg::s0, generations, reg::t0);
    as.bne(reg::t0, lgen);
  }

  // final best (value in s5, weight in fp, mask in s4)
  as.li(reg::s3, 0);
  const Label ffit = as.here("ffit");
  {
    as.la(reg::t2, pop_ref);
    as.s8addq(reg::s3, reg::t2, reg::t0);
    as.ldq(reg::a0, 0, reg::t0);
    as.call(fn_fitness);
    as.la(reg::t2, fit_ref);
    as.s8addq(reg::s3, reg::t2, reg::t0);
    as.stq(reg::v0, 0, reg::t0);
    as.addq_i(reg::s3, 1, reg::s3);
    as.cmplt_i(reg::s3, kPop, reg::t0);
    as.bne(reg::t0, ffit);
  }
  as.li(reg::s4, 0);
  as.li(reg::s3, 1);
  const Label fbest = as.here("fbest");
  {
    as.la(reg::t2, fit_ref);
    as.s8addq(reg::s3, reg::t2, reg::t0);
    as.ldq(reg::t0, 0, reg::t0);
    as.s8addq(reg::s4, reg::t2, reg::t1);
    as.ldq(reg::t1, 0, reg::t1);
    as.cmplt(reg::t1, reg::t0, reg::t3);
    as.cmovne(reg::t3, reg::s3, reg::s4);
    as.addq_i(reg::s3, 1, reg::s3);
    as.cmplt_i(reg::s3, kPop, reg::t0);
    as.bne(reg::t0, fbest);
  }
  as.la(reg::t2, pop_ref);
  as.s8addq(reg::s4, reg::t2, reg::t0);
  as.ldq(reg::s4, 0, reg::t0);  // s4 = best mask
  as.mov(reg::s4, reg::a0);
  as.call(fn_fitness);
  as.mov(reg::v0, reg::s5);     // value
  as.mov(reg::t11, reg::fp);    // weight

  as.mov_i(0, reg::a0);
  as.fi_activate();  // FI off

  as.print_str("value=");
  as.print_int_r(reg::s5);
  emit_newline(as);
  as.print_str("weight=");
  as.print_int_r(reg::fp);
  emit_newline(as);
  as.print_str("mask=");
  as.print_int_r(reg::s4);
  emit_newline(as);

  as.mov_i(0, reg::a0);
  as.exit_();

  App app;
  app.name = "knapsack";
  app.program = as.finalize(entry);

  const KnapGolden golden = golden_knapsack(seed, generations);
  app.golden_output = golden.output;
  const Items items = golden.items;
  const std::int64_t golden_best = golden.best_value;
  app.acceptable = [items, golden_best](const std::string& out, double& metric) {
    // Expect "value=V weight=W mask=M"; validate against the item tables.
    const auto vals = parse_double_list(out);
    if (!vals || vals->size() != 3) return false;
    const auto v = std::int64_t((*vals)[0]);
    const auto w = std::int64_t((*vals)[1]);
    const double mask_d = (*vals)[2];
    if (mask_d < 0 || mask_d > double(kMaskAll)) return false;
    const auto mask = std::uint64_t(mask_d);
    if (mask_weight(items, mask) != w || w > kLimit) return false;
    if (mask_value(items, mask) != v) return false;
    metric = golden_best == 0 ? 1.0 : double(v) / double(golden_best);
    return metric >= 0.9;
  };
  return app;
}

}  // namespace gemfi::apps
