// Toy AES — the canonical target of fault ATTACKS rather than accidental
// SEUs. Differential fault analysis (Piret–Quisquater style) recovers key
// material from a ciphertext pair that differs by a fault injected in the
// last MixColumns rounds; the attack fault models (SkipInjectedFault,
// OpcodeInjectedFault with a pcwin: window) reproduce exactly that setup,
// and any ciphertext deviation is an attacker success — so `acceptable`
// admits nothing but the bit-exact golden ciphertext.
//
// The cipher keeps the real AES round structure (SubBytes via a 256-entry
// table, ShiftRows as a byte permutation, MixColumns over GF(2^8) with
// xtime, AddRoundKey) over a 16-byte column-major state, but substitutes a
// seeded random permutation for the Rijndael S-box and LCG-derived round
// keys: the dataflow and fault-propagation characteristics match, without
// pretending to be cryptanalytically meaningful.
#include "apps/app.hpp"

#include <array>
#include <cstdio>
#include <string>

namespace gemfi::apps {

namespace {

constexpr unsigned kFullRounds = 4;  // + initial ARK + final round = 6 keys
constexpr unsigned kNumRoundKeys = kFullRounds + 2;

struct AesTables {
  std::array<std::uint8_t, 256> sbox;
  std::array<std::uint8_t, 16 * kNumRoundKeys> rk;
};

AesTables make_tables(std::uint64_t seed) {
  AesTables t;
  std::uint64_t state = seed ^ 0xae5ull;
  for (unsigned i = 0; i < 256; ++i) t.sbox[i] = std::uint8_t(i);
  for (unsigned i = 255; i > 0; --i) {
    const auto j = unsigned(lcg_next(state) % (i + 1));
    const std::uint8_t tmp = t.sbox[i];
    t.sbox[i] = t.sbox[j];
    t.sbox[j] = tmp;
  }
  for (auto& b : t.rk) b = std::uint8_t(lcg_next(state) >> 32);
  return t;
}

constexpr std::uint8_t xtime(std::uint8_t a) noexcept {
  return std::uint8_t((a << 1) ^ ((a >> 7) * 0x1b));
}

/// ShiftRows on the column-major state (index r + 4c): row r rotates left
/// by r columns, i.e. new[r + 4c] = old[r + 4((c + r) % 4)].
constexpr unsigned shift_perm(unsigned i) noexcept {
  const unsigned r = i % 4, c = i / 4;
  return r + 4 * ((c + r) % 4);
}

constexpr std::uint8_t plaintext_byte(std::uint64_t block, unsigned i) noexcept {
  return std::uint8_t((block * 16 + i) * 17 + 3);
}

/// Host twin of the guest kernel: must match operation-for-operation.
std::string golden_aes(const AesTables& t, std::uint64_t blocks) {
  std::string out;
  for (std::uint64_t b = 0; b < blocks; ++b) {
    std::uint8_t st[16], tmp[16];
    for (unsigned i = 0; i < 16; ++i) st[i] = plaintext_byte(b, i);
    for (unsigned i = 0; i < 16; ++i) st[i] ^= t.rk[i];
    for (unsigned round = 1; round <= kFullRounds + 1; ++round) {
      for (unsigned i = 0; i < 16; ++i) st[i] = t.sbox[st[i]];
      for (unsigned i = 0; i < 16; ++i) tmp[i] = st[shift_perm(i)];
      for (unsigned i = 0; i < 16; ++i) st[i] = tmp[i];
      if (round <= kFullRounds) {
        for (unsigned c = 0; c < 4; ++c) {
          std::uint8_t* col = st + 4 * c;
          const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
          col[0] = std::uint8_t(xtime(a0) ^ a1 ^ xtime(a1) ^ a2 ^ a3);
          col[1] = std::uint8_t(a0 ^ xtime(a1) ^ a2 ^ xtime(a2) ^ a3);
          col[2] = std::uint8_t(a0 ^ a1 ^ xtime(a2) ^ a3 ^ xtime(a3));
          col[3] = std::uint8_t(a0 ^ xtime(a0) ^ a1 ^ a2 ^ xtime(a3));
        }
      }
      for (unsigned i = 0; i < 16; ++i) st[i] ^= t.rk[round * 16 + i];
    }
    char buf[8];
    for (unsigned i = 0; i < 16; ++i) {
      std::snprintf(buf, sizeof buf, "%u ", unsigned(st[i]));
      out += buf;
    }
    out += '\n';
  }
  return out;
}

}  // namespace

App build_aes(const AppScale& scale) {
  using namespace assembler;
  const std::uint64_t blocks = scale.paper ? 8 : 2;
  const AesTables tables = make_tables(scale.seed);

  Assembler as;
  const Label entry = as.here("main");
  emit_boot(as);

  // Tables live in the data section, one byte per u64 word so every access
  // is a plain s8addq-indexed LDQ/STQ.
  std::array<std::uint64_t, 256> sbox64;
  for (unsigned i = 0; i < 256; ++i) sbox64[i] = tables.sbox[i];
  std::array<std::uint64_t, 16 * kNumRoundKeys> rk64;
  for (unsigned i = 0; i < rk64.size(); ++i) rk64[i] = tables.rk[i];
  std::array<std::uint64_t, 16> perm64;
  for (unsigned i = 0; i < 16; ++i) perm64[i] = shift_perm(i);
  const DataRef sbox_d = as.data_u64(std::span<const std::uint64_t>(sbox64));
  const DataRef rk_d = as.data_u64(std::span<const std::uint64_t>(rk64));
  const DataRef perm_d = as.data_u64(std::span<const std::uint64_t>(perm64));
  const DataRef state_d = as.data_zeros(16 * 8);
  const DataRef tmp_d = as.data_zeros(16 * 8);

  // --- init phase (pre-checkpoint): pin the invariant table pointers ---
  as.la(reg::s2, sbox_d);
  as.li(reg::s5, 0x1b);  // GF(2^8) reduction polynomial for xtime

  const auto emit_sub_bytes = [&] {
    as.la(reg::t0, state_d);
    as.li(reg::t1, 16);
    const Label loop = as.here();
    as.ldq(reg::t2, 0, reg::t0);
    as.s8addq(reg::t2, reg::s2, reg::t3);
    as.ldq(reg::t3, 0, reg::t3);
    as.stq(reg::t3, 0, reg::t0);
    as.lda(reg::t0, 8, reg::t0);
    as.subq_i(reg::t1, 1, reg::t1);
    as.bne(reg::t1, loop);
  };

  const auto emit_shift_rows = [&] {
    as.la(reg::t0, perm_d);
    as.la(reg::t1, state_d);
    as.la(reg::t2, tmp_d);
    as.li(reg::t3, 16);
    const Label gather = as.here();
    as.ldq(reg::t4, 0, reg::t0);
    as.s8addq(reg::t4, reg::t1, reg::t5);
    as.ldq(reg::t5, 0, reg::t5);
    as.stq(reg::t5, 0, reg::t2);
    as.lda(reg::t0, 8, reg::t0);
    as.lda(reg::t2, 8, reg::t2);
    as.subq_i(reg::t3, 1, reg::t3);
    as.bne(reg::t3, gather);
    as.la(reg::t1, state_d);
    as.la(reg::t2, tmp_d);
    as.li(reg::t3, 16);
    const Label copy = as.here();
    as.ldq(reg::t4, 0, reg::t2);
    as.stq(reg::t4, 0, reg::t1);
    as.lda(reg::t1, 8, reg::t1);
    as.lda(reg::t2, 8, reg::t2);
    as.subq_i(reg::t3, 1, reg::t3);
    as.bne(reg::t3, copy);
  };

  // xt(src) -> dst, clobbering a3. dst = ((src << 1) ^ ((src >> 7) * 0x1b)) & 0xff.
  const auto emit_xtime = [&](unsigned src, unsigned dst) {
    as.sll_i(src, 1, dst);
    as.srl_i(src, 7, reg::a3);
    as.mulq(reg::a3, reg::s5, reg::a3);
    as.xor_(dst, reg::a3, dst);
    as.and_i(dst, 0xff, dst);
  };

  const auto emit_mix_columns = [&] {
    as.la(reg::t0, state_d);
    as.li(reg::t1, 4);
    const Label col = as.here();
    as.ldq(reg::t2, 0, reg::t0);   // a0
    as.ldq(reg::t3, 8, reg::t0);   // a1
    as.ldq(reg::t4, 16, reg::t0);  // a2
    as.ldq(reg::t5, 24, reg::t0);  // a3
    emit_xtime(reg::t2, reg::t6);
    emit_xtime(reg::t3, reg::t7);
    emit_xtime(reg::t4, reg::t8);
    emit_xtime(reg::t5, reg::t9);
    // new0 = xt0 ^ a1 ^ xt1 ^ a2 ^ a3
    as.xor_(reg::t6, reg::t3, reg::t10);
    as.xor_(reg::t10, reg::t7, reg::t10);
    as.xor_(reg::t10, reg::t4, reg::t10);
    as.xor_(reg::t10, reg::t5, reg::t10);
    // new1 = a0 ^ xt1 ^ a2 ^ xt2 ^ a3
    as.xor_(reg::t2, reg::t7, reg::t11);
    as.xor_(reg::t11, reg::t4, reg::t11);
    as.xor_(reg::t11, reg::t8, reg::t11);
    as.xor_(reg::t11, reg::t5, reg::t11);
    // new2 = a0 ^ a1 ^ xt2 ^ a3 ^ xt3
    as.xor_(reg::t2, reg::t3, reg::a1);
    as.xor_(reg::a1, reg::t8, reg::a1);
    as.xor_(reg::a1, reg::t5, reg::a1);
    as.xor_(reg::a1, reg::t9, reg::a1);
    // new3 = a0 ^ xt0 ^ a1 ^ a2 ^ xt3
    as.xor_(reg::t2, reg::t6, reg::a2);
    as.xor_(reg::a2, reg::t3, reg::a2);
    as.xor_(reg::a2, reg::t4, reg::a2);
    as.xor_(reg::a2, reg::t9, reg::a2);
    as.stq(reg::t10, 0, reg::t0);
    as.stq(reg::t11, 8, reg::t0);
    as.stq(reg::a1, 16, reg::t0);
    as.stq(reg::a2, 24, reg::t0);
    as.lda(reg::t0, 32, reg::t0);
    as.subq_i(reg::t1, 1, reg::t1);
    as.bne(reg::t1, col);
  };

  const auto emit_add_round_key = [&](unsigned round) {
    as.la(reg::t0, state_d);
    as.la(reg::t1, rk_d);
    as.lda(reg::t1, std::int16_t(round * 16 * 8), reg::t1);
    as.li(reg::t2, 16);
    const Label loop = as.here();
    as.ldq(reg::t3, 0, reg::t0);
    as.ldq(reg::t4, 0, reg::t1);
    as.xor_(reg::t3, reg::t4, reg::t3);
    as.stq(reg::t3, 0, reg::t0);
    as.lda(reg::t0, 8, reg::t0);
    as.lda(reg::t1, 8, reg::t1);
    as.subq_i(reg::t2, 1, reg::t2);
    as.bne(reg::t2, loop);
  };

  as.fi_read_init();  // checkpoint boundary
  as.mov_i(0, reg::a0);
  as.fi_activate();   // FI on, thread id 0

  as.li(reg::s0, 0);  // block counter
  const Label block_loop = as.here("block");

  // state[i] = plaintext_byte(b, i) = ((b*16 + i)*17 + 3) & 0xff
  as.la(reg::t0, state_d);
  as.li(reg::t1, 0);
  const Label init = as.here();
  as.sll_i(reg::s0, 4, reg::t2);
  as.addq(reg::t2, reg::t1, reg::t2);
  as.sll_i(reg::t2, 4, reg::t3);  // *17 = x + (x << 4)
  as.addq(reg::t2, reg::t3, reg::t2);
  as.addq_i(reg::t2, 3, reg::t2);
  as.and_i(reg::t2, 0xff, reg::t2);
  as.stq(reg::t2, 0, reg::t0);
  as.lda(reg::t0, 8, reg::t0);
  as.addq_i(reg::t1, 1, reg::t1);
  as.cmplt_i(reg::t1, 16, reg::t2);
  as.bne(reg::t2, init);

  emit_add_round_key(0);
  for (unsigned round = 1; round <= kFullRounds; ++round) {
    emit_sub_bytes();
    emit_shift_rows();
    emit_mix_columns();
    emit_add_round_key(round);
  }
  emit_sub_bytes();
  emit_shift_rows();
  emit_add_round_key(kFullRounds + 1);

  // Print the ciphertext block as decimal bytes.
  as.la(reg::s1, state_d);
  as.li(reg::s3, 16);
  const Label print = as.here();
  as.ldq(reg::a0, 0, reg::s1);
  as.print_int();
  as.mov_i(' ', reg::a0);
  as.print_char();
  as.lda(reg::s1, 8, reg::s1);
  as.subq_i(reg::s3, 1, reg::s3);
  as.bne(reg::s3, print);
  emit_newline(as);

  as.addq_i(reg::s0, 1, reg::s0);
  as.li(reg::t0, std::int64_t(blocks));
  as.cmplt(reg::s0, reg::t0, reg::t1);
  as.bne(reg::t1, block_loop);

  as.mov_i(0, reg::a0);
  as.fi_activate();  // FI off

  as.mov_i(0, reg::a0);
  as.exit_();

  App app;
  app.name = "aes";
  app.program = as.finalize(entry);

  const std::string golden = golden_aes(tables, blocks);
  // Crypto has no quality margin: any ciphertext deviation is an attacker
  // success (DFA needs exactly one faulty ciphertext), so only the bit-exact
  // golden output is acceptable. `metric` reports the differing-byte count.
  app.acceptable = [golden](const std::string& out, double& metric) {
    std::size_t diff = out.size() > golden.size() ? out.size() - golden.size()
                                                  : golden.size() - out.size();
    const std::size_t common = out.size() < golden.size() ? out.size() : golden.size();
    for (std::size_t i = 0; i < common; ++i) diff += out[i] != golden[i];
    metric = double(diff);
    return diff == 0;
  };
  app.golden_output = golden;  // provisional; calibrate() overwrites with a real run
  return app;
}

}  // namespace gemfi::apps
