#include "chkpt/checkpoint.hpp"

#include <cstdio>
#include <memory>
#include <stdexcept>

namespace gemfi::chkpt {

namespace {
constexpr std::uint32_t kMagic = 0x47464943;  // "GFIC"
constexpr std::uint32_t kVersion = 1;
}  // namespace

Checkpoint Checkpoint::capture(const sim::Simulation& s) {
  util::ByteWriter payload;
  s.serialize(payload);

  util::ByteWriter out;
  out.reserve(payload.size() + 32);
  out.put_u32(kMagic);
  out.put_u32(kVersion);
  out.put_u64(payload.size());
  out.put_u32(util::crc32(payload.bytes()));
  out.put_bytes(payload.bytes());

  Checkpoint c;
  c.blob_ = out.take();
  return c;
}

void Checkpoint::restore_into(sim::Simulation& s) const {
  util::ByteReader r(blob_);
  if (r.get_u32() != kMagic) throw util::DeserializeError("bad checkpoint magic");
  if (r.get_u32() != kVersion) throw util::DeserializeError("unsupported checkpoint version");
  const std::uint64_t len = r.get_u64();
  const std::uint32_t crc = r.get_u32();
  if (r.remaining() != len) throw util::DeserializeError("checkpoint payload length mismatch");
  const std::span<const std::uint8_t> payload(blob_.data() + (blob_.size() - len), len);
  if (util::crc32(payload) != crc) throw util::DeserializeError("checkpoint CRC mismatch");
  util::ByteReader pr(payload);
  s.deserialize(pr);
}

Checkpoint Checkpoint::from_bytes(std::vector<std::uint8_t> bytes) {
  Checkpoint c;
  c.blob_ = std::move(bytes);
  return c;
}

void Checkpoint::save_file(const std::string& path) const {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> f(std::fopen(path.c_str(), "wb"),
                                                    &std::fclose);
  if (!f) throw std::runtime_error("cannot write checkpoint file: " + path);
  if (std::fwrite(blob_.data(), 1, blob_.size(), f.get()) != blob_.size())
    throw std::runtime_error("short write to checkpoint file: " + path);
}

Checkpoint Checkpoint::load_file(const std::string& path) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> f(std::fopen(path.c_str(), "rb"),
                                                    &std::fclose);
  if (!f) throw std::runtime_error("cannot read checkpoint file: " + path);
  std::fseek(f.get(), 0, SEEK_END);
  const long size = std::ftell(f.get());
  std::fseek(f.get(), 0, SEEK_SET);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size), 0);
  if (std::fread(bytes.data(), 1, bytes.size(), f.get()) != bytes.size())
    throw std::runtime_error("short read from checkpoint file: " + path);
  return from_bytes(std::move(bytes));
}

}  // namespace gemfi::chkpt
