#include "chkpt/checkpoint.hpp"

#include <bit>
#include <cstdio>
#include <cstring>
#include <memory>
#include <stdexcept>

#include "mem/physmem.hpp"

namespace gemfi::chkpt {

namespace {

constexpr std::uint32_t kMagic = 0x47464943;  // "GFIC"

// v1: magic + version + u64 payload_len + u32 crc = 20 bytes. v2 headers are
// longer, but 20 is the floor any well-formed checkpoint file must clear.
constexpr std::size_t kMinHeaderBytes = 20;

// v2 header flag bits.
constexpr std::uint32_t kFlagCompress = 1u << 0;

// v2 per-page encodings.
constexpr std::uint8_t kPageRaw = 0;
constexpr std::uint8_t kPageRle = 1;

bool all_zero(std::span<const std::uint8_t> page) {
  std::size_t i = 0;
  for (; i + 8 <= page.size(); i += 8) {
    std::uint64_t v;
    std::memcpy(&v, page.data() + i, 8);
    if (v != 0) return false;
  }
  for (; i < page.size(); ++i)
    if (page[i] != 0) return false;
  return true;
}

Checkpoint capture_v1(const sim::Simulation& s) {
  util::ByteWriter payload;
  s.serialize(payload);

  util::ByteWriter out;
  out.reserve(payload.size() + 32);
  out.put_u32(kMagic);
  out.put_u32(1);
  out.put_u64(payload.size());
  out.put_u32(util::crc32(payload.bytes()));
  out.put_bytes(payload.bytes());
  return Checkpoint::from_bytes(out.take());
}

Checkpoint capture_v2(const sim::Simulation& s, const CaptureOptions& opts) {
  const mem::PhysMem& phys = s.memsys().phys();

  // Memory section: u64 stored-page count, then per stored page
  // { u64 page_index; u8 encoding; u32 payload_len; payload }.
  util::ByteWriter records;
  records.reserve(std::size_t(phys.size() / 16));  // guess: mostly-zero image
  std::uint64_t stored = 0;
  std::uint64_t rle = 0;
  for (std::uint64_t i = 0, n = phys.page_count(); i < n; ++i) {
    const auto page = phys.page(i);
    if (all_zero(page)) continue;
    ++stored;
    records.put_u64(i);
    if (opts.compress) {
      const auto enc = util::rle_compress(page);
      if (enc.size() < page.size()) {
        ++rle;
        records.put_u8(kPageRle);
        records.put_u32(std::uint32_t(enc.size()));
        records.put_bytes(enc);
        continue;
      }
    }
    records.put_u8(kPageRaw);
    records.put_u32(std::uint32_t(page.size()));
    records.put_bytes(page);
  }

  util::ByteWriter mem_sec;
  mem_sec.reserve(records.size() + 8);
  mem_sec.put_u64(stored);
  mem_sec.put_bytes(records.bytes());

  util::ByteWriter state;
  s.serialize_machine(state);

  util::ByteWriter out;
  out.reserve(mem_sec.size() + state.size() + 64);
  out.put_u32(kMagic);
  out.put_u32(2);
  out.put_u32(std::uint32_t(mem::PhysMem::kPageBytes));
  out.put_u32(opts.compress ? kFlagCompress : 0);
  out.put_u64(phys.size());
  out.put_u64(mem_sec.size());
  // CRC over the 32-byte fixed prologue: mem_bytes sizes the decoded image
  // allocation, so it must be validated *before* it is trusted — a bit flip
  // there would otherwise request an absurd allocation instead of a clean
  // DeserializeError.
  out.put_u32(util::crc32(out.bytes()));
  out.put_bytes(mem_sec.bytes());
  out.put_u32(util::crc32(mem_sec.bytes()));
  out.put_u64(state.size());
  out.put_bytes(state.bytes());
  out.put_u32(util::crc32(state.bytes()));
  return Checkpoint::from_bytes(out.take());
}

/// Validate the fixed v1/v2 prologue and return the version word.
std::uint32_t read_version(util::ByteReader& r) {
  if (r.get_u32() != kMagic) throw util::DeserializeError("bad checkpoint magic");
  return r.get_u32();
}

struct V2Header {
  std::uint32_t flags = 0;
  std::uint64_t mem_bytes = 0;
  std::uint64_t mem_len = 0;
};

/// Read and validate the fixed v2 prologue (reader already past
/// magic+version). The header CRC is checked before mem_bytes or mem_len is
/// trusted, so a damaged size field fails cleanly instead of driving a huge
/// allocation.
V2Header read_v2_header(util::ByteReader& r, std::span<const std::uint8_t> blob) {
  V2Header h;
  const std::uint32_t page_size = r.get_u32();
  if (page_size != mem::PhysMem::kPageBytes)
    throw util::DeserializeError("unsupported checkpoint page size");
  h.flags = r.get_u32();
  h.mem_bytes = r.get_u64();
  h.mem_len = r.get_u64();
  const std::uint32_t header_crc = r.get_u32();
  if (util::crc32(blob.first(32)) != header_crc)
    throw util::DeserializeError("checkpoint header CRC mismatch");
  return h;
}

}  // namespace

const char* checkpoint_format_name(CheckpointFormat f) noexcept {
  switch (f) {
    case CheckpointFormat::V1: return "v1";
    case CheckpointFormat::V2: return "v2";
  }
  return "?";
}

Checkpoint Checkpoint::capture(const sim::Simulation& s, const CaptureOptions& opts) {
  return opts.format == CheckpointFormat::V1 ? capture_v1(s) : capture_v2(s, opts);
}

void Checkpoint::restore_into(sim::Simulation& s) const {
  util::ByteReader r(blob_);
  const std::uint32_t version = read_version(r);
  if (version == 1) {
    const std::uint64_t len = r.get_u64();
    const std::uint32_t crc = r.get_u32();
    if (r.remaining() != len) throw util::DeserializeError("checkpoint payload length mismatch");
    const auto payload = r.get_span(std::size_t(len));
    if (util::crc32(payload) != crc) throw util::DeserializeError("checkpoint CRC mismatch");
    util::ByteReader pr(payload);
    s.deserialize(pr);
    return;
  }
  if (version == 2) {
    CheckpointImage::parse(*this).restore_into(s);
    return;
  }
  throw util::DeserializeError("unsupported checkpoint version");
}

CheckpointFormat Checkpoint::format() const {
  util::ByteReader r(blob_);
  const std::uint32_t version = read_version(r);
  if (version == 1) return CheckpointFormat::V1;
  if (version == 2) return CheckpointFormat::V2;
  throw util::DeserializeError("unsupported checkpoint version");
}

CheckpointStats Checkpoint::stats() const {
  util::ByteReader r(blob_);
  const std::uint32_t version = read_version(r);
  CheckpointStats st;
  st.encoded_bytes = blob_.size();

  if (version == 1) {
    st.format = CheckpointFormat::V1;
    const std::uint64_t len = r.get_u64();
    const std::uint32_t crc = r.get_u32();
    if (r.remaining() != len) throw util::DeserializeError("checkpoint payload length mismatch");
    const auto payload = r.get_span(std::size_t(len));
    if (util::crc32(payload) != crc) throw util::DeserializeError("checkpoint CRC mismatch");
    // Payload = u8 cpu-kind, then the length-prefixed memory blob.
    util::ByteReader pr(payload);
    (void)pr.get_u8();
    st.mem_bytes = pr.get_u64();
    if (pr.remaining() < st.mem_bytes)
      throw util::DeserializeError("checkpoint stream truncated");
    st.raw_bytes = len;
    st.pages_total = (st.mem_bytes + mem::PhysMem::kPageBytes - 1) / mem::PhysMem::kPageBytes;
    st.pages_stored = st.pages_total;  // v1 stores the image flat
    return st;
  }
  if (version != 2) throw util::DeserializeError("unsupported checkpoint version");

  st.format = CheckpointFormat::V2;
  const V2Header h = read_v2_header(r, blob_);
  st.mem_bytes = h.mem_bytes;
  st.pages_total =
      (st.mem_bytes + mem::PhysMem::kPageBytes - 1) / mem::PhysMem::kPageBytes;
  const auto mem_sec = r.get_span(std::size_t(h.mem_len));
  if (util::crc32(mem_sec) != r.get_u32())
    throw util::DeserializeError("checkpoint memory section CRC mismatch");
  const std::uint64_t state_len = r.get_u64();
  const auto state_sec = r.get_span(std::size_t(state_len));
  if (util::crc32(state_sec) != r.get_u32())
    throw util::DeserializeError("checkpoint state section CRC mismatch");
  if (!r.at_end()) throw util::DeserializeError("trailing bytes after checkpoint");
  st.raw_bytes = st.mem_bytes + state_len;

  // Walk the page records without decompressing.
  util::ByteReader mr(mem_sec);
  st.pages_stored = mr.get_u64();
  for (std::uint64_t k = 0; k < st.pages_stored; ++k) {
    (void)mr.get_u64();  // page index
    const std::uint8_t enc = mr.get_u8();
    if (enc == kPageRle) ++st.pages_rle;
    else if (enc != kPageRaw) throw util::DeserializeError("unknown checkpoint page encoding");
    (void)mr.get_span(mr.get_u32());
  }
  if (!mr.at_end()) throw util::DeserializeError("trailing bytes in checkpoint memory section");
  return st;
}

Checkpoint Checkpoint::from_bytes(std::vector<std::uint8_t> bytes) {
  Checkpoint c;
  c.blob_ = std::move(bytes);
  return c;
}

void Checkpoint::save_file(const std::string& path) const {
  // Write to a sibling temp file and rename over the destination so a failed
  // save (crash, full disk) never leaves a truncated checkpoint behind.
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) throw std::runtime_error("cannot write checkpoint file: " + tmp);
  const bool wrote =
      blob_.empty() || std::fwrite(blob_.data(), 1, blob_.size(), f) == blob_.size();
  const bool flushed = std::fflush(f) == 0 && std::ferror(f) == 0;
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !flushed || !closed) {
    std::remove(tmp.c_str());
    throw std::runtime_error("short write to checkpoint file: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("cannot move checkpoint into place: " + path);
  }
}

Checkpoint Checkpoint::load_file(const std::string& path) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> f(std::fopen(path.c_str(), "rb"),
                                                    &std::fclose);
  if (!f) throw std::runtime_error("cannot read checkpoint file: " + path);
  if (std::fseek(f.get(), 0, SEEK_END) != 0)
    throw std::runtime_error("cannot seek checkpoint file: " + path);
  const long size = std::ftell(f.get());
  if (size < 0) throw std::runtime_error("cannot size checkpoint file: " + path);
  if (std::size_t(size) < kMinHeaderBytes)
    throw util::DeserializeError("checkpoint file shorter than its header: " + path);
  if (std::fseek(f.get(), 0, SEEK_SET) != 0)
    throw std::runtime_error("cannot seek checkpoint file: " + path);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size), 0);
  if (std::fread(bytes.data(), 1, bytes.size(), f.get()) != bytes.size())
    throw std::runtime_error("short read from checkpoint file: " + path);
  return from_bytes(std::move(bytes));
}

// --- CheckpointImage -------------------------------------------------------

CheckpointImage CheckpointImage::parse(const Checkpoint& c) {
  CheckpointImage img;
  img.stats_.encoded_bytes = c.size_bytes();

  util::ByteReader r(c.bytes());
  const std::uint32_t version = read_version(r);

  if (version == 1) {
    img.stats_.format = CheckpointFormat::V1;
    const std::uint64_t len = r.get_u64();
    const std::uint32_t crc = r.get_u32();
    if (r.remaining() != len) throw util::DeserializeError("checkpoint payload length mismatch");
    const auto payload = r.get_span(std::size_t(len));
    if (util::crc32(payload) != crc) throw util::DeserializeError("checkpoint CRC mismatch");
    // v1 payload = [u8 cpu-kind][u64 mem_len][memory image][machine tail].
    // Splicing out the memory blob leaves exactly the serialize_machine
    // stream: the kind byte followed by the tail.
    util::ByteReader pr(payload);
    const std::uint8_t kind = pr.get_u8();
    const std::uint64_t mem_len = pr.get_u64();
    const auto mem = pr.get_span(std::size_t(mem_len));
    img.mem_.assign(mem.begin(), mem.end());
    const auto rest = pr.get_span(pr.remaining());
    img.state_.reserve(1 + rest.size());
    img.state_.push_back(kind);
    img.state_.insert(img.state_.end(), rest.begin(), rest.end());
    img.stats_.raw_bytes = len;
    img.stats_.mem_bytes = img.mem_.size();
    img.stats_.pages_total =
        (img.stats_.mem_bytes + mem::PhysMem::kPageBytes - 1) / mem::PhysMem::kPageBytes;
    img.stats_.pages_stored = img.stats_.pages_total;
    return img;
  }
  if (version != 2) throw util::DeserializeError("unsupported checkpoint version");

  img.stats_.format = CheckpointFormat::V2;
  const V2Header h = read_v2_header(r, c.bytes());
  const std::uint64_t mem_bytes = h.mem_bytes;
  const auto mem_sec = r.get_span(std::size_t(h.mem_len));
  if (util::crc32(mem_sec) != r.get_u32())
    throw util::DeserializeError("checkpoint memory section CRC mismatch");
  const std::uint64_t state_len = r.get_u64();
  const auto state_sec = r.get_span(std::size_t(state_len));
  if (util::crc32(state_sec) != r.get_u32())
    throw util::DeserializeError("checkpoint state section CRC mismatch");
  if (!r.at_end()) throw util::DeserializeError("trailing bytes after checkpoint");

  const std::uint64_t pages_total =
      (mem_bytes + mem::PhysMem::kPageBytes - 1) / mem::PhysMem::kPageBytes;
  img.mem_.assign(std::size_t(mem_bytes), 0);
  util::ByteReader mr(mem_sec);
  const std::uint64_t stored = mr.get_u64();
  for (std::uint64_t k = 0; k < stored; ++k) {
    const std::uint64_t pi = mr.get_u64();
    if (pi >= pages_total) throw util::DeserializeError("checkpoint page index out of range");
    const std::uint8_t enc = mr.get_u8();
    const std::uint32_t plen = mr.get_u32();
    const auto payload = mr.get_span(plen);
    const std::uint64_t base = pi << mem::PhysMem::kPageShift;
    const std::size_t page_len =
        std::size_t(std::min<std::uint64_t>(mem::PhysMem::kPageBytes, mem_bytes - base));
    const std::span<std::uint8_t> out(img.mem_.data() + base, page_len);
    if (enc == kPageRaw) {
      if (plen != page_len)
        throw util::DeserializeError("checkpoint raw page length mismatch");
      std::memcpy(out.data(), payload.data(), page_len);
    } else if (enc == kPageRle) {
      util::rle_decompress(payload, out);
      ++img.stats_.pages_rle;
    } else {
      throw util::DeserializeError("unknown checkpoint page encoding");
    }
  }
  if (!mr.at_end()) throw util::DeserializeError("trailing bytes in checkpoint memory section");

  img.state_.assign(state_sec.begin(), state_sec.end());
  img.stats_.raw_bytes = mem_bytes + state_len;
  img.stats_.mem_bytes = mem_bytes;
  img.stats_.pages_total = pages_total;
  img.stats_.pages_stored = stored;
  return img;
}

std::uint64_t CheckpointImage::restore_into(sim::Simulation& s) const {
  s.memsys().phys().copy_from(mem_);  // clears the dirty bitmap
  restore_machine(s);
  return stats_.pages_total;
}

std::uint64_t CheckpointImage::restore_dirty_into(sim::Simulation& s) const {
  mem::PhysMem& phys = s.memsys().phys();
  if (phys.size() != mem_.size())
    throw util::DeserializeError("checkpoint memory size mismatch");
  const auto raw = phys.raw();
  const auto words = phys.dirty_words();
  std::uint64_t copied = 0;
  for (std::size_t wi = 0; wi < words.size(); ++wi) {
    std::uint64_t w = words[wi];
    while (w != 0) {
      const unsigned bit = unsigned(std::countr_zero(w));
      w &= w - 1;
      const std::uint64_t pi = (std::uint64_t(wi) << 6) | bit;
      const std::uint64_t base = pi << mem::PhysMem::kPageShift;
      const std::size_t n =
          std::size_t(std::min<std::uint64_t>(mem::PhysMem::kPageBytes, mem_.size() - base));
      std::memcpy(raw.data() + base, mem_.data() + base, n);
      phys.bump_page_versions(base, n);  // raw() bypasses mark_dirty
      ++copied;
    }
  }
  phys.clear_dirty();  // memory is the baseline image again
  restore_machine(s);
  return copied;
}

void CheckpointImage::restore_machine(sim::Simulation& s) const {
  util::ByteReader r(state_);
  s.deserialize_machine(r);
  if (!r.at_end())
    throw util::DeserializeError("trailing bytes in checkpoint machine state");
}

}  // namespace gemfi::chkpt
