// Whole-simulation checkpointing — the reproduction's stand-in for DMTCP
// (paper Sec. III-D).
//
// The paper checkpoints the Linux process running the simulator; we
// serialize the simulation object graph instead, which preserves the
// property the paper exploits: a checkpoint taken right after OS boot and
// application initialization (at fi_read_init_all()) can be restored many
// times, each restore re-reading a different fault-configuration file, to
// fast-forward an entire campaign past the common prefix.
//
// Two on-disk formats, distinguished by the version word:
//   v1 (legacy, still loadable): magic + version + payload length +
//      CRC32(payload) + payload, where the payload is the flat
//      Simulation::serialize stream (memory embedded as one blob).
//   v2 (default): page-granular memory. All-zero 4 KiB pages are skipped,
//      stored pages are optionally RLE-compressed, and the header, memory
//      and machine-state sections carry independent CRC32s, so a campaign can
//      parse the memory section once into an immutable baseline
//      (CheckpointImage) and restore each experiment by copying only the
//      pages the previous one dirtied.
//
// Restores validate everything and throw util::DeserializeError on damage.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/simulation.hpp"

namespace gemfi::chkpt {

enum class CheckpointFormat : std::uint8_t { V1 = 1, V2 = 2 };

const char* checkpoint_format_name(CheckpointFormat f) noexcept;

struct CaptureOptions {
  CheckpointFormat format = CheckpointFormat::V2;
  /// v2 only: RLE-encode stored pages that actually shrink.
  bool compress = true;
};

/// How a checkpoint encodes on the wire (what a NoW workstation copies).
struct CheckpointStats {
  CheckpointFormat format = CheckpointFormat::V1;
  std::uint64_t raw_bytes = 0;      // memory image + machine state, flat
  std::uint64_t encoded_bytes = 0;  // blob size actually moved/stored
  std::uint64_t mem_bytes = 0;      // guest physical memory size
  std::uint64_t pages_total = 0;
  std::uint64_t pages_stored = 0;   // non-zero pages present in the image
  std::uint64_t pages_rle = 0;      // of those, RLE-compressed
};

class Checkpoint {
 public:
  Checkpoint() = default;

  /// Snapshot a (quiesced) simulation.
  static Checkpoint capture(const sim::Simulation& s, const CaptureOptions& opts = {});

  /// Restore into a simulation constructed with the same config + program.
  /// Dispatches on the stored format version (v1 and v2 both load).
  /// Resets fault-injection state per the paper's fi_read_init_all contract.
  void restore_into(sim::Simulation& s) const;

  [[nodiscard]] bool empty() const noexcept { return blob_.empty(); }
  [[nodiscard]] std::size_t size_bytes() const noexcept { return blob_.size(); }
  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept { return blob_; }

  /// Format of this blob (header peek; throws DeserializeError if damaged).
  [[nodiscard]] CheckpointFormat format() const;
  /// Encoding statistics (validates headers and CRCs along the way).
  [[nodiscard]] CheckpointStats stats() const;

  /// File round-trip (the "network share" of the NoW campaign protocol).
  /// save_file writes a temp file and renames it into place, so a crashed or
  /// out-of-disk save never clobbers an existing good checkpoint.
  void save_file(const std::string& path) const;
  static Checkpoint load_file(const std::string& path);

  /// Construct from raw bytes (validated lazily at restore time).
  static Checkpoint from_bytes(std::vector<std::uint8_t> bytes);

 private:
  std::vector<std::uint8_t> blob_;
};

/// A checkpoint parsed once into an immutable, fully decoded baseline:
/// the flat memory image plus the serialized machine-state section.
///
/// This is the campaign shared-restore path (Sec. III-D at scale): the
/// runner parses the image once, every worker keeps one Simulation alive
/// across experiments, and each restore copies back only the pages the
/// previous experiment dirtied (PhysMem's dirty bitmap) plus the small
/// machine-state stream — instead of re-deserializing a multi-MiB blob per
/// experiment. All methods are const; one image may be shared by any number
/// of concurrent workers.
class CheckpointImage {
 public:
  /// Decode a v1 or v2 checkpoint; throws util::DeserializeError on damage.
  static CheckpointImage parse(const Checkpoint& c);

  /// Full restore (first experiment of a worker, or a fresh simulation).
  /// Returns the number of pages materialized (the whole image).
  std::uint64_t restore_into(sim::Simulation& s) const;

  /// Incremental restore into a simulation previously restored from *this*
  /// image: copies only pages marked dirty since that restore, clears the
  /// bitmap, and re-deserializes the machine state. Returns pages copied.
  std::uint64_t restore_dirty_into(sim::Simulation& s) const;

  [[nodiscard]] const CheckpointStats& stats() const noexcept { return stats_; }

 private:
  void restore_machine(sim::Simulation& s) const;

  std::vector<std::uint8_t> mem_;    // decoded flat memory image
  std::vector<std::uint8_t> state_;  // serialize_machine stream
  CheckpointStats stats_{};
};

}  // namespace gemfi::chkpt
