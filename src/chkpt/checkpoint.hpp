// Whole-simulation checkpointing — the reproduction's stand-in for DMTCP
// (paper Sec. III-D).
//
// The paper checkpoints the Linux process running the simulator; we
// serialize the simulation object graph instead, which preserves the
// property the paper exploits: a checkpoint taken right after OS boot and
// application initialization (at fi_read_init_all()) can be restored many
// times, each restore re-reading a different fault-configuration file, to
// fast-forward an entire campaign past the common prefix.
//
// Format: magic + version + payload length + payload + CRC32(payload).
// Restores validate all of it and throw util::DeserializeError on damage.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/simulation.hpp"

namespace gemfi::chkpt {

class Checkpoint {
 public:
  Checkpoint() = default;

  /// Snapshot a (quiesced) simulation.
  static Checkpoint capture(const sim::Simulation& s);

  /// Restore into a simulation constructed with the same config + program.
  /// Resets fault-injection state per the paper's fi_read_init_all contract.
  void restore_into(sim::Simulation& s) const;

  [[nodiscard]] bool empty() const noexcept { return blob_.empty(); }
  [[nodiscard]] std::size_t size_bytes() const noexcept { return blob_.size(); }
  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept { return blob_; }

  /// File round-trip (the "network share" of the NoW campaign protocol).
  void save_file(const std::string& path) const;
  static Checkpoint load_file(const std::string& path);

  /// Construct from raw bytes (validated lazily at restore time).
  static Checkpoint from_bytes(std::vector<std::uint8_t> bytes);

 private:
  std::vector<std::uint8_t> blob_;
};

}  // namespace gemfi::chkpt
