// Wire encoding of the NoW dispatch protocol messages (campaign/dispatch).
//
// Payloads are util/bytesio streams carried inside net::Frame envelopes.
// Decoders validate every enum discriminator and length so a malicious or
// version-skewed peer surfaces as util::DeserializeError (which the dispatch
// layer treats exactly like a damaged frame: drop the peer, requeue its
// work), never as undefined behavior inside the campaign.
//
// The Welcome message is the "checkpoint copy" step of the paper's NoW
// protocol (Sec. III-E step 3): it carries the calibrated app's identity and
// golden-run costs plus the sparse-v2 checkpoint blob, so a worker process
// reconstructs a CalibratedApp without re-running calibration — the whole
// point of shipping the checkpoint once per workstation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/runner.hpp"
#include "util/bytesio.hpp"

namespace gemfi::campaign::wire {

/// v1 is the original master/worker dispatch protocol; v2 adds the campaign-
/// service control plane (message types 10+ below); v3 appends the syscall-
/// fault fields to Welcome and Result, so pre-v3 peers reject those frames as
/// malformed (trailing bytes) instead of silently dropping the plans; v4
/// appends the golden-path fast-mode flag to both Welcome (so every worker
/// runs the same engine tier as the master decided) and Result (so replay can
/// force the identical engagement decision); v5 adds the sequential
/// early-stop plane — CancelQueue/CancelAck so a statistically satisfied
/// master can reclaim queued-but-unstarted experiments from workers instead
/// of waiting them out, and AggregateUpdate so service clients can stream
/// the online aggregate. Masters accept any Hello version in
/// [1, kProtocolVersion].
inline constexpr std::uint32_t kProtocolVersion = 5;

enum class MsgType : std::uint8_t {
  // --- worker plane (unchanged since v1) ---
  Hello = 1,      // worker -> master: version + slot count
  Welcome = 2,    // master -> worker: campaign config + calibration + checkpoint
  Batch = 3,      // master -> worker: experiment (index, fault) pairs
  Result = 4,     // worker -> master: one finished experiment
  Heartbeat = 5,  // worker -> master: liveness + busy-slot count
  Shutdown = 6,   // master -> worker: campaign over, exit after current work

  // --- sequential early-stop plane (v5) ---
  CancelQueue = 7,  // master -> worker: drop queued-not-started experiments
  CancelAck = 8,    // worker -> master: indices it dropped (still uniquely owned)

  // --- control plane (v2, client <-> campaign service; codecs live in
  // campaign/service/control.hpp) ---
  SubmitCampaign = 10,  // client -> service: CampaignSpec
  SubmitReply = 11,     // service -> client: assigned id or error
  StatusRequest = 12,   // client -> service: one campaign id or 0 = all
  StatusReply = 13,     // service -> client: per-campaign status records
  CancelCampaign = 14,  // client -> service: stop dispatching a campaign
  CancelReply = 15,     // service -> client: ack or error
  StreamResults = 16,   // client -> service: subscribe to a campaign's JSONL
  ResultLines = 17,     // service -> client: a batch of JSONL record lines
  StreamEnd = 18,       // service -> client: campaign reached a terminal state
  AggregateUpdate = 19,  // service -> client: online aggregate summary JSON (v5)
};

struct Hello {
  std::uint32_t version = kProtocolVersion;
  std::uint32_t slots = 1;
};

struct Welcome {
  // Enough to rebuild the CalibratedApp: apps::build_app(app_name, scale)
  // regenerates the program and classification closures deterministically;
  // the golden-run numbers below are calibration outputs shipped verbatim.
  std::string app_name;
  bool paper_scale = false;
  std::uint64_t app_scale_seed = 0;
  std::string golden_output;
  std::uint64_t golden_insts = 0;
  std::uint64_t golden_kernel_insts = 0;
  std::uint64_t app_golden_ticks = 0;
  std::uint64_t golden_ticks = 0;
  std::uint64_t golden_committed = 0;
  std::uint64_t kernel_fetches = 0;
  std::uint64_t ticks_to_checkpoint = 0;
  std::vector<std::uint8_t> checkpoint;  // Checkpoint::bytes(), shipped once

  // The CampaignConfig subset that affects experiment execution. Host-side
  // policy (workers, observer) stays local to each end.
  std::uint8_t cpu = 0;
  bool switch_to_atomic_after_fault = true;
  bool use_checkpoint = true;
  bool predecode = true;
  bool fastpath = true;
  bool fastmode = true;  // superblock golden-path tier (v4)
  bool shared_baseline = true;
  std::uint64_t watchdog_mult = 8;
  std::uint64_t campaign_seed = 0;
  double deadline_seconds = 0.0;
  std::uint32_t max_retries = 2;
  double retry_backoff = 2.0;

  // Syscall-fault campaign setup (v3). Plans travel in their canonical
  // grammar lines; the worker re-parses them, so the grammar is the wire
  // format and a hostile line is rejected by the same validation the CLI uses.
  std::vector<std::string> syscall_plan_lines;
  bool random_syscall_faults = false;

  /// Split a master-side (CalibratedApp, AppScale, CampaignConfig) into the
  /// wire form / reassemble the worker-side equivalents.
  static Welcome from(const CalibratedApp& ca, const apps::AppScale& scale,
                      const CampaignConfig& cfg);
  [[nodiscard]] CalibratedApp rebuild_app() const;
  [[nodiscard]] CampaignConfig rebuild_config() const;
};

struct BatchItem {
  std::uint64_t index = 0;
  std::string fault_line;  // fi::Fault::to_line(), reparsed on the worker
};

struct ResultMsg {
  std::uint64_t index = 0;
  ExperimentResult result;
};

struct Heartbeat {
  std::uint64_t sequence = 0;
  std::uint32_t busy_slots = 0;
};

/// CancelAck payload: the queued experiment indices the worker dropped in
/// response to CancelQueue. (CancelQueue itself carries an empty payload.)
struct CancelAck {
  std::vector<std::uint64_t> dropped;
};

// --- encoders (payload bytes only; framing is net::encode_frame) ---
std::vector<std::uint8_t> encode_hello(const Hello& h);
std::vector<std::uint8_t> encode_welcome(const Welcome& w);
std::vector<std::uint8_t> encode_batch(const std::vector<BatchItem>& items);
std::vector<std::uint8_t> encode_result(const ResultMsg& r);
std::vector<std::uint8_t> encode_heartbeat(const Heartbeat& hb);
std::vector<std::uint8_t> encode_cancel_ack(const CancelAck& ack);

// --- decoders; throw util::DeserializeError / std::invalid_argument on
// malformed or out-of-range payloads ---
Hello decode_hello(std::span<const std::uint8_t> payload);
Welcome decode_welcome(std::span<const std::uint8_t> payload);
std::vector<BatchItem> decode_batch(std::span<const std::uint8_t> payload);
ResultMsg decode_result(std::span<const std::uint8_t> payload);
Heartbeat decode_heartbeat(std::span<const std::uint8_t> payload);
CancelAck decode_cancel_ack(std::span<const std::uint8_t> payload);

/// ExperimentResult as a bytesio stream (shared by Result messages and any
/// future on-disk spill format).
void put_result(util::ByteWriter& w, const ExperimentResult& er);
ExperimentResult get_result(util::ByteReader& r);

}  // namespace gemfi::campaign::wire
