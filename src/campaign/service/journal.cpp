#include "campaign/service/journal.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

namespace gemfi::campaign::service {

namespace fs = std::filesystem;

namespace {

/// Repair a crash-truncated file in place: drop any bytes after the last
/// newline (a line the dying process never finished writing). Returns true
/// if bytes were removed.
bool repair_tail(const fs::path& path) {
  std::error_code ec;
  const auto size = fs::file_size(path, ec);
  if (ec || size == 0) return false;
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("journal: cannot open " + path.string());
  std::string data(std::size_t(size), '\0');
  in.read(data.data(), std::streamsize(size));
  const auto last_nl = data.find_last_of('\n');
  const std::uintmax_t keep = last_nl == std::string::npos ? 0 : last_nl + 1;
  if (keep == size) return false;
  fs::resize_file(path, keep, ec);
  if (ec)
    throw std::runtime_error("journal: cannot repair truncated tail of " +
                             path.string());
  return true;
}

std::vector<std::string> read_lines(const fs::path& path) {
  std::vector<std::string> lines;
  std::ifstream in(path, std::ios::binary);
  if (!in) return lines;
  std::string line;
  while (std::getline(in, line))
    if (!line.empty()) lines.push_back(line);
  return lines;
}

}  // namespace

Journal::Journal(std::string root) : root_(std::move(root)) {
  if (root_.empty()) throw std::runtime_error("journal: empty root directory");
  std::error_code ec;
  fs::create_directories(root_, ec);
  if (ec) throw std::runtime_error("journal: cannot create directory " + root_);

  const fs::path events_path = fs::path(root_) / "campaigns.jsonl";

  // --- recovery: replay lifecycle events ---
  struct Entry {
    CampaignSpec spec;
    bool terminal = false;
  };
  std::map<std::uint64_t, Entry> table;
  if (fs::exists(events_path)) {
    if (repair_tail(events_path)) ++recovered_.repaired_files;
    for (const std::string& line : read_lines(events_path)) {
      try {
        const jsonl::Value v = jsonl::parse(line);
        const std::string event = v.at("event").as_string();
        const std::uint64_t id = v.at("id").as_u64();
        recovered_.next_campaign_id = std::max(recovered_.next_campaign_id, id + 1);
        if (event == "submit") {
          table[id] = Entry{CampaignSpec::from_json(v), false};
        } else if (event == "done" || event == "cancelled" || event == "failed") {
          const auto it = table.find(id);
          if (it != table.end()) it->second.terminal = true;
        } else if (event == "calibrated") {
          // Informational (calibration cost); the restarted service
          // recalibrates anyway, so nothing to replay.
        } else {
          ++recovered_.skipped_lines;
        }
      } catch (const std::exception&) {
        ++recovered_.skipped_lines;
      }
    }
  }

  // --- recovery: per-campaign high-water marks ---
  for (auto& [id, entry] : table) {
    if (entry.terminal) continue;
    RecoveredCampaign rc;
    rc.id = id;
    rc.spec = std::move(entry.spec);
    const fs::path rpath = results_path(id);
    if (fs::exists(rpath)) {
      if (repair_tail(rpath)) ++recovered_.repaired_files;
      std::set<std::uint64_t> seen;
      for (const std::string& line : read_lines(rpath)) {
        try {
          const std::uint64_t index = jsonl::parse(line).at("index").as_u64();
          if (index >= rc.spec.experiments || !seen.insert(index).second) {
            ++rc.duplicate_result_lines;
            continue;
          }
          rc.done_indices.push_back(index);
        } catch (const std::exception&) {
          ++recovered_.skipped_lines;
        }
      }
    }
    recovered_.live.push_back(std::move(rc));
  }

  events_ = std::fopen(events_path.c_str(), "ab");
  if (!events_)
    throw std::runtime_error("journal: cannot open for append: " +
                             events_path.string());
}

Journal::~Journal() {
  if (results_cache_) std::fclose(results_cache_);
  if (events_) std::fclose(events_);
}

void Journal::append_event_line(const std::string& line) {
  std::fwrite(line.data(), 1, line.size(), events_);
  std::fputc('\n', events_);
  std::fflush(events_);
}

void Journal::record_submit(std::uint64_t id, const CampaignSpec& spec) {
  // Splice the event/id fields into the spec's own JSON object so one line
  // carries the whole submission.
  const std::string spec_json = spec.to_json();  // "{...}"
  jsonl::ObjectWriter head;
  head.field("event", "submit").field("id", id);
  std::string line = head.str();  // "{"event":...,"id":N}"
  line.pop_back();                // strip '}'
  line += ',';
  line += spec_json.substr(1);  // skip '{'
  append_event_line(line);
}

void Journal::record_calibrated(std::uint64_t id, double calib_wall_seconds,
                                bool fastmode) {
  jsonl::ObjectWriter w;
  w.field("event", "calibrated")
      .field("id", id)
      .field("calib_wall_seconds", calib_wall_seconds)
      .field("fastmode", fastmode);
  append_event_line(w.str());
}

void Journal::record_terminal(std::uint64_t id, CampaignState state,
                              const std::string& error) {
  jsonl::ObjectWriter w;
  w.field("event", campaign_state_name(state)).field("id", id);
  if (!error.empty()) w.field("error", error);
  append_event_line(w.str());
}

void Journal::append_result(std::uint64_t id, const std::string& json_line) {
  // Results append with open/write/close per line? No — that would be three
  // syscalls per experiment anyway; keep one FILE* for the hot campaign
  // instead. The LRU-of-one is enough: the service appends in bursts per
  // campaign, and correctness only needs append+flush.
  if (results_cache_id_ != id || results_cache_ == nullptr) {
    if (results_cache_) std::fclose(results_cache_);
    results_cache_ = std::fopen(results_path(id).c_str(), "ab");
    results_cache_id_ = id;
    if (!results_cache_)
      throw std::runtime_error("journal: cannot append results for campaign " +
                               std::to_string(id));
  }
  std::fwrite(json_line.data(), 1, json_line.size(), results_cache_);
  std::fputc('\n', results_cache_);
  std::fflush(results_cache_);
}

std::vector<std::string> Journal::read_result_lines(std::uint64_t id) const {
  return read_lines(results_path(id));
}

std::string Journal::results_path(std::uint64_t id) const {
  return (fs::path(root_) / ("c" + std::to_string(id) + ".results.jsonl")).string();
}

}  // namespace gemfi::campaign::service
