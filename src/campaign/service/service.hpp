// The campaign-manager service: multi-tenant FI-as-a-Service.
//
// A single long-running gemfi_campaignd process owns one worker fleet and
// serves many clients at once: clients submit CampaignSpecs, poll status,
// cancel, and stream results over the v2 control plane; workers join with
// the unchanged v1 Hello and are leased to campaigns one connection at a
// time (the Welcome fixes which app a connection runs, so moving a worker
// between campaigns means closing its connection and letting the worker's
// reconnect loop bring it back for reassignment).
//
// Durability: every accepted spec and every completed experiment is written
// to a crash-recovery Journal before it is acknowledged anywhere else. A
// SIGKILLed service restarted on the same journal directory re-runs
// calibration (deterministic), re-queues exactly the experiments whose
// results were never journaled, and finishes every in-flight campaign with
// each experiment id appearing exactly once in its results file.
//
// Threading: the service is the dispatch master's poll loop grown a control
// plane — everything network- and journal-facing runs on the single run()
// thread. The one exception is calibration (seconds of simulation per app),
// which runs on a background thread and posts completions back through a
// queue + self-pipe wake.
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>

#include "campaign/service/spec.hpp"

namespace gemfi::campaign::service {

struct ServiceConfig {
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;     // 0 = ephemeral (see CampaignService::port())
  std::string journal_dir;    // required: crash-recovery journal root

  // Liveness (same model as DispatchConfig: idle measured from the last
  // complete frame, partial frames get a bounded grace).
  double worker_timeout_s = 15.0;
  double frame_grace_s = 10.0;

  double poll_interval_s = 0.05;     // event-loop tick
  unsigned pipeline_depth = 2;       // in-flight per worker = slots * depth
  std::size_t max_worker_frame = 1 << 20;
  std::size_t max_client_frame = 1 << 20;
  double client_send_timeout_s = 10.0;

  /// How often the fair-share rebalancer may move a worker between
  /// campaigns (each move costs the worker a reconnect).
  double rebalance_interval_s = 1.0;

  /// > 0: print a per-campaign status block to `status_out` (default
  /// stderr) this often — the daemon's progress display.
  double status_interval_s = 0.0;
  std::FILE* status_out = nullptr;

  /// Install a SIGINT handler for the duration of run() that triggers a
  /// graceful stop (workers get Shutdown; live campaigns stay journaled and
  /// resume on the next start).
  bool handle_sigint = false;
};

struct ServiceReport {
  std::uint64_t campaigns_submitted = 0;  // accepted over the wire this run
  std::uint64_t campaigns_recovered = 0;  // resumed from the journal
  std::uint64_t campaigns_done = 0;
  std::uint64_t campaigns_cancelled = 0;
  std::uint64_t campaigns_failed = 0;
  std::uint64_t campaigns_stopped_early = 0;  // sequential stop rule fired
  std::uint64_t results_journaled = 0;    // lines appended this run
  std::uint64_t duplicate_results = 0;    // dropped by exactly-once dedup
  unsigned workers_joined = 0;
  unsigned workers_lost = 0;
  unsigned clients_served = 0;
  std::uint64_t requeued = 0;
  std::uint64_t frames_rejected = 0;
  std::uint64_t peers_timed_out = 0;
  std::uint64_t rebalance_moves = 0;      // workers parted for fair share
  double wall_seconds = 0.0;
};

class CampaignService {
 public:
  /// Opens (and recovers) the journal and binds the listener immediately;
  /// serves nothing until run(). Throws on an unusable journal directory or
  /// bind failure.
  explicit CampaignService(ServiceConfig scfg);
  ~CampaignService();

  CampaignService(const CampaignService&) = delete;
  CampaignService& operator=(const CampaignService&) = delete;

  [[nodiscard]] std::uint16_t port() const noexcept;

  /// Serve until request_stop() (or SIGINT with handle_sigint). Recovered
  /// campaigns are recalibrated and resumed automatically.
  ServiceReport run();

  /// Thread-safe graceful stop: finish the current tick, send Shutdown to
  /// every worker, leave live campaigns in the journal for the next start.
  void request_stop() noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace gemfi::campaign::service
