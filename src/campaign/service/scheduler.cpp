#include "campaign/service/scheduler.hpp"

#include <map>

namespace gemfi::campaign::service {

namespace {

bool runnable(const SchedEntry& e) {
  return e.pending > 0 &&
         (e.max_workers == 0 || e.workers < e.max_workers);
}

/// Per-tenant totals across runnable campaigns. Workers leased to campaigns
/// that are no longer runnable still count toward the tenant's share: a
/// tenant can't dodge accounting by having some leases winding down.
struct TenantLoad {
  std::uint64_t weight = 0;
  std::uint64_t workers = 0;
};

std::map<std::string, TenantLoad> tenant_loads(const std::vector<SchedEntry>& entries) {
  std::map<std::string, TenantLoad> loads;
  for (const SchedEntry& e : entries) {
    TenantLoad& t = loads[e.tenant];
    t.workers += e.workers;
    if (runnable(e)) t.weight += e.weight;
  }
  return loads;
}

}  // namespace

std::uint64_t pick_campaign_for_worker(const std::vector<SchedEntry>& entries) {
  const auto loads = tenant_loads(entries);
  const SchedEntry* best = nullptr;
  // Tenant score = workers / weight, compared as cross products to stay in
  // integers: a/b < c/d  <=>  a*d < c*b (weights are small, no overflow risk).
  auto tenant_less = [&](const SchedEntry& x, const SchedEntry& y) {
    const TenantLoad& tx = loads.at(x.tenant);
    const TenantLoad& ty = loads.at(y.tenant);
    const std::uint64_t lhs = tx.workers * ty.weight;
    const std::uint64_t rhs = ty.workers * tx.weight;
    if (lhs != rhs) return lhs < rhs;
    // Same tenant score: fewest leased workers, then lowest id.
    if (x.workers != y.workers) return x.workers < y.workers;
    return x.id < y.id;
  };
  for (const SchedEntry& e : entries) {
    if (!runnable(e)) continue;
    if (best == nullptr || tenant_less(e, *best)) best = &e;
  }
  return best ? best->id : 0;
}

std::uint64_t pick_rebalance_donor(const std::vector<SchedEntry>& entries) {
  const SchedEntry* donor = nullptr;
  for (const SchedEntry& e : entries) {
    const bool can_spare = e.workers >= 2 || (e.workers >= 1 && e.pending == 0);
    if (!can_spare) continue;
    if (donor == nullptr || e.workers > donor->workers ||
        (e.workers == donor->workers && e.id < donor->id))
      donor = &e;
  }
  return donor ? donor->id : 0;
}

bool has_starved_campaign(const std::vector<SchedEntry>& entries) {
  for (const SchedEntry& e : entries)
    if (e.pending > 0 && e.workers == 0) return true;
  return false;
}

}  // namespace gemfi::campaign::service
