#include "campaign/service/spec.hpp"

#include <stdexcept>

namespace gemfi::campaign::service {

void CampaignSpec::validate() const {
  if (app_name.empty()) throw std::invalid_argument("campaign spec: empty app name");
  if (experiments == 0)
    throw std::invalid_argument("campaign spec: zero experiments");
  if (tenant.empty()) throw std::invalid_argument("campaign spec: empty tenant");
  if (weight == 0) throw std::invalid_argument("campaign spec: zero weight");
  if (cpu > std::uint8_t(sim::CpuKind::Pipelined))
    throw std::invalid_argument("campaign spec: out-of-range cpu kind " +
                                std::to_string(cpu));
  if (stop_eps < 0.0 || stop_eps > 0.5)
    throw std::invalid_argument("campaign spec: stop_eps out of [0, 0.5]");
  if (stop_eps > 0.0 && (stop_conf <= 0.5 || stop_conf >= 1.0))
    throw std::invalid_argument("campaign spec: stop_conf out of (0.5, 1)");
}

CampaignConfig CampaignSpec::to_campaign_config() const {
  CampaignConfig cfg;
  cfg.cpu = static_cast<sim::CpuKind>(cpu);
  cfg.watchdog_mult = watchdog_mult;
  cfg.campaign_seed = campaign_seed;
  cfg.deadline_seconds = deadline_seconds;
  cfg.max_retries = max_retries;
  cfg.retry_backoff = retry_backoff;
  cfg.predecode = predecode;
  cfg.fastpath = fastpath;
  cfg.fastmode = fastmode;
  return cfg;
}

apps::AppScale CampaignSpec::to_scale() const {
  apps::AppScale scale;
  scale.paper = paper_scale;
  scale.seed = app_scale_seed;
  return scale;
}

std::string CampaignSpec::to_json() const {
  jsonl::ObjectWriter w;
  w.field("tenant", tenant)
      .field("name", name)
      .field("app", app_name)
      .field("paper", paper_scale)
      .field("scale_seed", app_scale_seed)
      .field("experiments", experiments)
      .field("seed", campaign_seed)
      .field("weight", std::uint64_t(weight))
      .field("max_workers", std::uint64_t(max_workers))
      .field("cpu", std::uint64_t(cpu))
      .field("watchdog_mult", watchdog_mult)
      .field("deadline", deadline_seconds)
      .field("retries", std::uint64_t(max_retries))
      .field("retry_backoff", retry_backoff)
      .field("predecode", predecode)
      .field("fastpath", fastpath)
      .field("fastmode", fastmode)
      .field("stop_eps", stop_eps)
      .field("stop_conf", stop_conf);
  return w.str();
}

CampaignSpec CampaignSpec::from_json(const jsonl::Value& v) {
  if (!v.is_object()) throw std::invalid_argument("campaign spec: not a JSON object");
  CampaignSpec s;
  s.tenant = v.at("tenant").as_string();
  s.name = v.has("name") ? v.at("name").as_string() : "";
  s.app_name = v.at("app").as_string();
  if (v.has("paper")) s.paper_scale = v.at("paper").as_bool();
  if (v.has("scale_seed")) s.app_scale_seed = v.at("scale_seed").as_u64();
  s.experiments = v.at("experiments").as_u64();
  s.campaign_seed = v.at("seed").as_u64();
  if (v.has("weight")) s.weight = std::uint32_t(v.at("weight").as_u64());
  if (v.has("max_workers"))
    s.max_workers = std::uint32_t(v.at("max_workers").as_u64());
  if (v.has("cpu")) s.cpu = std::uint8_t(v.at("cpu").as_u64());
  if (v.has("watchdog_mult")) s.watchdog_mult = v.at("watchdog_mult").as_u64();
  if (v.has("deadline")) s.deadline_seconds = v.at("deadline").as_double();
  if (v.has("retries")) s.max_retries = std::uint32_t(v.at("retries").as_u64());
  if (v.has("retry_backoff")) s.retry_backoff = v.at("retry_backoff").as_double();
  if (v.has("predecode")) s.predecode = v.at("predecode").as_bool();
  if (v.has("fastpath")) s.fastpath = v.at("fastpath").as_bool();
  if (v.has("fastmode")) s.fastmode = v.at("fastmode").as_bool();
  if (v.has("stop_eps")) s.stop_eps = v.at("stop_eps").as_double();
  if (v.has("stop_conf")) s.stop_conf = v.at("stop_conf").as_double();
  s.validate();
  return s;
}

const char* campaign_state_name(CampaignState s) noexcept {
  switch (s) {
    case CampaignState::Queued: return "queued";
    case CampaignState::Calibrating: return "calibrating";
    case CampaignState::Running: return "running";
    case CampaignState::Done: return "done";
    case CampaignState::Cancelled: return "cancelled";
    case CampaignState::Failed: return "failed";
  }
  return "?";
}

}  // namespace gemfi::campaign::service
