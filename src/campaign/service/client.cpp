#include "campaign/service/client.hpp"

#include <stdexcept>

#include "campaign/wire.hpp"

namespace gemfi::campaign::service {

namespace {

std::vector<std::uint8_t> frame_for(wire::MsgType type,
                                    std::span<const std::uint8_t> payload) {
  return net::encode_frame(std::uint8_t(type), payload);
}

}  // namespace

Client Client::connect(const std::string& host, std::uint16_t port,
                       unsigned attempts, double backoff_s) {
  Client c;
  c.conn_ = net::TcpConn::connect(host, port, attempts, backoff_s);
  return c;
}

net::Frame Client::next_frame(double timeout_s) {
  // A frame may already be fully buffered from a previous oversized read.
  if (auto f = reader_.next()) return std::move(*f);
  const double deadline = net::mono_seconds() + timeout_s;
  std::uint8_t buf[64 * 1024];
  for (;;) {
    const double remaining = deadline - net::mono_seconds();
    if (remaining <= 0.0)
      throw net::SocketError("campaign service reply timed out");
    if (!conn_.wait_readable(remaining < 0.25 ? remaining : 0.25)) continue;
    const auto got = conn_.recv_some(buf);
    if (!got) throw net::SocketError("campaign service closed the connection");
    reader_.feed(std::span<const std::uint8_t>(buf, *got));
    if (auto f = reader_.next()) return std::move(*f);
  }
}

std::uint64_t Client::submit(const CampaignSpec& spec) {
  conn_.send_all(frame_for(wire::MsgType::SubmitCampaign, encode_submit(spec)));
  const net::Frame f = next_frame(30.0);
  if (wire::MsgType(f.type) != wire::MsgType::SubmitReply)
    throw net::ProtocolError("expected SubmitReply, got type " +
                             std::to_string(f.type));
  const SubmitReply reply = decode_submit_reply(f.payload);
  if (!reply.ok)
    throw std::runtime_error("campaign rejected: " + reply.error);
  return reply.id;
}

std::vector<CampaignStatus> Client::status(std::uint64_t id) {
  conn_.send_all(
      frame_for(wire::MsgType::StatusRequest, encode_status_request({id})));
  const net::Frame f = next_frame(30.0);
  if (wire::MsgType(f.type) != wire::MsgType::StatusReply)
    throw net::ProtocolError("expected StatusReply, got type " +
                             std::to_string(f.type));
  return decode_status_reply(f.payload);
}

void Client::cancel(std::uint64_t id) {
  conn_.send_all(frame_for(wire::MsgType::CancelCampaign, encode_cancel({id})));
  const net::Frame f = next_frame(30.0);
  if (wire::MsgType(f.type) != wire::MsgType::CancelReply)
    throw net::ProtocolError("expected CancelReply, got type " +
                             std::to_string(f.type));
  const CancelReply reply = decode_cancel_reply(f.payload);
  if (!reply.ok) throw std::runtime_error("cancel refused: " + reply.error);
}

CampaignState Client::stream(std::uint64_t id,
                             const std::function<void(const std::string&)>& on_line,
                             double timeout_s) {
  conn_.send_all(
      frame_for(wire::MsgType::StreamResults, encode_stream_results({id})));
  for (;;) {
    const net::Frame f = next_frame(timeout_s);
    switch (wire::MsgType(f.type)) {
      case wire::MsgType::ResultLines: {
        const ResultLines rl = decode_result_lines(f.payload);
        if (rl.id != id)
          throw net::ProtocolError("ResultLines for foreign campaign");
        if (on_line)
          for (const std::string& line : rl.lines) on_line(line);
        break;
      }
      case wire::MsgType::StreamEnd: {
        const StreamEnd end = decode_stream_end(f.payload);
        if (end.id != id)
          throw net::ProtocolError("StreamEnd for foreign campaign");
        if (end.state == CampaignState::Failed && !end.error.empty())
          throw std::runtime_error("campaign failed: " + end.error);
        return end.state;
      }
      default:
        throw net::ProtocolError("unexpected stream message type " +
                                 std::to_string(f.type));
    }
  }
}

}  // namespace gemfi::campaign::service
