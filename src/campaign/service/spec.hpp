// Campaign specs and status records for the FI-as-a-Service control plane.
//
// A CampaignSpec is everything a client must say to get a campaign run: the
// app and its scale, the experiment count and seed, the execution knobs that
// affect results, and the multi-tenant scheduling inputs (tenant, fair-share
// weight, worker quota). The same struct is the unit of durability — the
// service journals each accepted spec as one JSON line and rebuilds its
// campaign table from those lines after a crash — so both representations
// (bytesio for the wire, JSON for the journal) live here and are covered by
// round-trip tests.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "apps/app.hpp"
#include "campaign/jsonl.hpp"
#include "campaign/runner.hpp"

namespace gemfi::campaign::service {

struct CampaignSpec {
  std::string tenant = "default";  // fair-share accounting key
  std::string name;                // human label, free-form
  std::string app_name;
  bool paper_scale = false;
  std::uint64_t app_scale_seed = 0x5eed0001;

  std::uint64_t experiments = 0;  // campaign size (seeded_fault_set count)
  std::uint64_t campaign_seed = 42;

  // Scheduling inputs.
  std::uint32_t weight = 1;       // fair-share weight of this campaign
  std::uint32_t max_workers = 0;  // worker-lease quota, 0 = unlimited

  // Execution knobs shipped to workers via the Welcome (the subset of
  // CampaignConfig that affects experiment results).
  std::uint8_t cpu = std::uint8_t(sim::CpuKind::Pipelined);
  std::uint64_t watchdog_mult = 8;
  double deadline_seconds = 0.0;
  std::uint32_t max_retries = 2;
  double retry_backoff = 2.0;
  bool predecode = true;
  bool fastpath = true;
  bool fastmode = true;  // superblock golden-path tier (A/B knob)

  /// Sequential early-stop rule (v5): stop once every outcome proportion's
  /// Wilson CI half-width is below stop_eps at stop_conf confidence,
  /// evaluated on index-ordered prefixes. 0 disables (run all experiments).
  double stop_eps = 0.0;
  double stop_conf = 0.99;

  /// Throws std::invalid_argument on an unusable spec (no app, zero
  /// experiments, out-of-range cpu kind, empty tenant, zero weight).
  void validate() const;

  [[nodiscard]] CampaignConfig to_campaign_config() const;
  [[nodiscard]] apps::AppScale to_scale() const;

  /// Journal form: the spec's fields as one flat JSON object (no newline).
  [[nodiscard]] std::string to_json() const;
  /// Rebuild from a parsed journal object; missing optional fields keep
  /// their defaults, so old journals load under newer builds. Throws
  /// std::invalid_argument / std::out_of_range on malformed input.
  static CampaignSpec from_json(const jsonl::Value& v);
};

/// Lifecycle of a service-managed campaign. Queued/Calibrating/Running are
/// live; Done/Cancelled/Failed are terminal and journaled.
enum class CampaignState : std::uint8_t {
  Queued = 0,
  Calibrating = 1,
  Running = 2,
  Done = 3,
  Cancelled = 4,
  Failed = 5,
};

inline constexpr unsigned kNumCampaignStates = 6;

const char* campaign_state_name(CampaignState s) noexcept;

[[nodiscard]] constexpr bool is_terminal(CampaignState s) noexcept {
  return s == CampaignState::Done || s == CampaignState::Cancelled ||
         s == CampaignState::Failed;
}

/// One campaign's status as reported to clients (StatusReply payload) and
/// printed by the daemon: identity, progress, scheduling share, outcomes.
struct CampaignStatus {
  std::uint64_t id = 0;
  std::string tenant;
  std::string name;
  std::string app_name;
  CampaignState state = CampaignState::Queued;
  std::uint64_t total = 0;
  std::uint64_t completed = 0;
  std::uint64_t inflight = 0;    // dispatched, result not yet in
  std::uint64_t dispatched = 0;  // experiments shipped to workers (share metric)
  std::uint32_t workers = 0;     // workers currently leased
  std::uint32_t weight = 1;
  std::array<std::uint64_t, apps::kNumOutcomes> counts{};
  std::string error;  // Failed: why
  double age_seconds = 0.0;
};

}  // namespace gemfi::campaign::service
