// Wire codecs for the v2 client <-> campaign-service control plane.
//
// Same conventions as campaign/wire.hpp: payloads are util/bytesio streams
// carried in net::Frame envelopes, every decoder validates lengths and enum
// discriminators, and malformed input surfaces as util::DeserializeError so
// the service treats a hostile client exactly like a damaged frame (drop the
// peer) — never as undefined behavior.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "campaign/service/spec.hpp"

namespace gemfi::campaign::service {

/// SubmitReply: the service accepted (ok, id assigned) or rejected
/// (ok=false, error says why — bad spec, unknown app, service stopping).
struct SubmitReply {
  bool ok = false;
  std::uint64_t id = 0;
  std::string error;
};

/// StatusRequest: id = 0 asks for every campaign, otherwise just that one.
struct StatusRequest {
  std::uint64_t id = 0;
};

struct CancelCampaign {
  std::uint64_t id = 0;
};

struct CancelReply {
  bool ok = false;
  std::string error;
};

struct StreamResults {
  std::uint64_t id = 0;
};

/// A batch of complete JSONL record lines (no trailing newlines) from one
/// campaign's results journal, in append order.
struct ResultLines {
  std::uint64_t id = 0;
  std::vector<std::string> lines;
};

/// Terminal notification closing a StreamResults subscription.
struct StreamEnd {
  std::uint64_t id = 0;
  CampaignState state = CampaignState::Done;
  std::string error;  // Failed: why
};

std::vector<std::uint8_t> encode_submit(const CampaignSpec& spec);
std::vector<std::uint8_t> encode_submit_reply(const SubmitReply& r);
std::vector<std::uint8_t> encode_status_request(const StatusRequest& r);
std::vector<std::uint8_t> encode_status_reply(const std::vector<CampaignStatus>& statuses);
std::vector<std::uint8_t> encode_cancel(const CancelCampaign& c);
std::vector<std::uint8_t> encode_cancel_reply(const CancelReply& r);
std::vector<std::uint8_t> encode_stream_results(const StreamResults& s);
std::vector<std::uint8_t> encode_result_lines(const ResultLines& rl);
std::vector<std::uint8_t> encode_stream_end(const StreamEnd& e);

// Decoders throw util::DeserializeError (or std::invalid_argument from
// CampaignSpec::validate) on malformed payloads.
CampaignSpec decode_submit(std::span<const std::uint8_t> payload);
SubmitReply decode_submit_reply(std::span<const std::uint8_t> payload);
StatusRequest decode_status_request(std::span<const std::uint8_t> payload);
std::vector<CampaignStatus> decode_status_reply(std::span<const std::uint8_t> payload);
CancelCampaign decode_cancel(std::span<const std::uint8_t> payload);
CancelReply decode_cancel_reply(std::span<const std::uint8_t> payload);
StreamResults decode_stream_results(std::span<const std::uint8_t> payload);
ResultLines decode_result_lines(std::span<const std::uint8_t> payload);
StreamEnd decode_stream_end(std::span<const std::uint8_t> payload);

}  // namespace gemfi::campaign::service
