#include "campaign/service/service.hpp"

#include <poll.h>

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>

#include "campaign/analytics/aggregator.hpp"
#include "campaign/observer.hpp"
#include "campaign/service/control.hpp"
#include "campaign/service/journal.hpp"
#include "campaign/service/scheduler.hpp"
#include "campaign/wire.hpp"
#include "net/frame.hpp"
#include "net/sigint.hpp"
#include "net/socket.hpp"
#include "util/bytesio.hpp"

namespace gemfi::campaign::service {

namespace {

using net::mono_seconds;

std::vector<std::uint8_t> frame_for(wire::MsgType type,
                                    std::span<const std::uint8_t> payload) {
  return net::encode_frame(std::uint8_t(type), payload);
}

/// Reverse of experiment_record_to_json's outcome field (counts recovery).
std::optional<apps::Outcome> outcome_from_name(const std::string& name) {
  for (unsigned i = 0; i < apps::kNumOutcomes; ++i)
    if (name == apps::outcome_name(apps::Outcome(i))) return apps::Outcome(i);
  return std::nullopt;
}

}  // namespace

struct CampaignService::Impl {
  ServiceConfig scfg;
  Journal journal;
  net::TcpListener listener;
  net::SelfPipe stop_wake;   // SIGINT / request_stop
  net::SelfPipe calib_wake;  // calibration-thread completions
  std::atomic<bool> stop_requested{false};

  // -------------------------------------------------------------------------
  // Campaign table
  // -------------------------------------------------------------------------

  struct Campaign {
    std::uint64_t id = 0;
    CampaignSpec spec;
    CampaignState state = CampaignState::Queued;
    std::string error;
    double submitted_at = 0.0;
    bool recovered = false;
    std::vector<std::uint64_t> recovered_done;  // journal high-water mark

    // Populated by integrate_calibration (state >= Running).
    CalibratedApp ca;
    CampaignConfig cfg;
    std::vector<fi::Fault> faults;
    std::vector<std::uint8_t> welcome_frame;
    std::size_t welcome_payload_bytes = 0;
    std::deque<std::uint64_t> pending;  // not yet dispatched
    std::vector<std::uint8_t> done;     // exactly-once bitmap
    std::uint64_t completed = 0;
    std::uint64_t dispatched = 0;  // shipped to workers (share metric)
    std::array<std::uint64_t, apps::kNumOutcomes> counts{};

    // Sequential early-stop (spec.stop_eps > 0): the streaming aggregator
    // evaluates the prefix rule on every result; `stopping` marks the drain
    // window between the rule firing and the last in-flight result landing.
    std::unique_ptr<Aggregator> agg;
    bool stopping = false;

    std::vector<unsigned> subscribers;  // peer ids streaming this campaign
  };
  std::map<std::uint64_t, Campaign> campaigns;
  std::uint64_t next_id = 1;

  // -------------------------------------------------------------------------
  // Peers: one listener, two kinds. The first frame decides: Hello = a
  // worker joining the fleet, any control-plane type = a client.
  // -------------------------------------------------------------------------

  enum class PeerKind : std::uint8_t { Unknown, Worker, Client };

  struct Peer {
    unsigned id = 0;
    PeerKind kind = PeerKind::Unknown;
    net::TcpConn conn;
    net::FrameReader reader;
    net::FrameLiveness liveness;
    bool defunct = false;  // marked for removal at the next tick

    // Worker state.
    unsigned slots = 0;
    std::uint64_t lease = 0;  // campaign id this connection serves; 0 = parked
    std::unordered_map<std::uint64_t, double> inflight;  // index -> sent time

    // Client state.
    std::uint64_t stream = 0;  // campaign id subscribed to; 0 = none

    Peer(net::TcpConn c, std::size_t max_frame, double now)
        : conn(std::move(c)), reader(max_frame) {
      liveness.reset(now);
    }
  };
  std::vector<std::unique_ptr<Peer>> peers;
  unsigned next_peer_id = 0;

  // -------------------------------------------------------------------------
  // Calibration thread: calibrate() costs seconds of simulation per app, so
  // it runs off the poll loop. Jobs carry a copy of the spec; completions
  // come back through `calib_done` + a self-pipe wake. The cache (identical
  // app/scale/config calibrate identically — the whole protocol depends on
  // that determinism) is touched only by the calibration thread.
  // -------------------------------------------------------------------------

  struct CalibJob {
    std::uint64_t id = 0;
    CampaignSpec spec;
  };
  struct CalibDone {
    std::uint64_t id = 0;
    bool ok = false;
    CalibratedApp ca;
    std::string error;
  };
  std::thread calib_thread;
  std::mutex calib_mutex;
  std::condition_variable calib_cv;
  bool calib_stop = false;
  std::deque<CalibJob> calib_queue;
  std::deque<CalibDone> calib_done;

  ServiceReport stats;
  double started_at = 0.0;
  double last_rebalance = 0.0;
  double last_status = 0.0;

  // -------------------------------------------------------------------------

  explicit Impl(ServiceConfig scfg_in)
      : scfg(std::move(scfg_in)), journal(scfg.journal_dir) {
    listener = net::TcpListener::bind_listen(scfg.bind_address, scfg.port);
    for (const RecoveredCampaign& rc : journal.recovered().live) {
      Campaign c;
      c.id = rc.id;
      c.spec = rc.spec;
      c.recovered = true;
      c.recovered_done = rc.done_indices;
      c.submitted_at = mono_seconds();  // age restarts with the service
      campaigns.emplace(c.id, std::move(c));
      ++stats.campaigns_recovered;
    }
    next_id = journal.recovered().next_campaign_id;
  }

  // --- calibration ---------------------------------------------------------

  void calib_main() {
    // Cache key covers everything calibrate() depends on.
    std::map<std::string, CalibratedApp> cache;
    for (;;) {
      CalibJob job;
      {
        std::unique_lock lock(calib_mutex);
        calib_cv.wait(lock, [this] { return calib_stop || !calib_queue.empty(); });
        if (calib_stop) return;
        job = std::move(calib_queue.front());
        calib_queue.pop_front();
      }
      CalibDone done;
      done.id = job.id;
      const std::string key =
          job.spec.app_name + "|" + (job.spec.paper_scale ? "p" : "s") + "|" +
          std::to_string(job.spec.app_scale_seed) + "|" +
          std::to_string(job.spec.cpu) + "|" +
          std::to_string(job.spec.watchdog_mult) + "|" +
          (job.spec.predecode ? "d" : "-") + (job.spec.fastpath ? "f" : "-") +
          (job.spec.fastmode ? "m" : "-");
      try {
        auto it = cache.find(key);
        if (it == cache.end()) {
          apps::App app = apps::build_app(job.spec.app_name, job.spec.to_scale());
          it = cache.emplace(key, calibrate(std::move(app),
                                            job.spec.to_campaign_config()))
                   .first;
        }
        done.ca = it->second;
        done.ok = true;
      } catch (const std::exception& e) {
        done.error = e.what();
      }
      {
        std::lock_guard lock(calib_mutex);
        calib_done.push_back(std::move(done));
      }
      calib_wake.notify();
    }
  }

  void queue_calibrations() {
    std::lock_guard lock(calib_mutex);
    for (auto& [id, c] : campaigns) {
      if (c.state != CampaignState::Queued) continue;
      calib_queue.push_back({id, c.spec});
      c.state = CampaignState::Calibrating;
    }
    calib_cv.notify_one();
  }

  void integrate_calibrations() {
    std::deque<CalibDone> batch;
    {
      std::lock_guard lock(calib_mutex);
      batch.swap(calib_done);
    }
    for (CalibDone& d : batch) {
      const auto it = campaigns.find(d.id);
      if (it == campaigns.end() || is_terminal(it->second.state)) continue;
      Campaign& c = it->second;
      if (!d.ok) {
        finish_campaign(c, CampaignState::Failed, d.error);
        continue;
      }
      c.ca = std::move(d.ca);
      c.cfg = c.spec.to_campaign_config();
      // Durable calibration cost record: a restarted service recalibrates, so
      // the journal keeps one "calibrated" line per completed calibration.
      journal.record_calibrated(c.id, c.ca.calib_wall_seconds, c.cfg.fastmode);
      const auto payload =
          wire::encode_welcome(wire::Welcome::from(c.ca, c.spec.to_scale(), c.cfg));
      c.welcome_payload_bytes = payload.size();
      c.welcome_frame = frame_for(wire::MsgType::Welcome, payload);
      c.faults = seeded_fault_set(c.spec.campaign_seed,
                                  std::size_t(c.spec.experiments),
                                  c.ca.kernel_fetches);
      c.done.assign(c.faults.size(), 0);
      if (c.spec.stop_eps > 0.0) {
        // Recovered campaigns keep the aggregator too: journaled-done indices
        // are never fed to it, so the contiguous-prefix rule simply cannot
        // fire past them and the campaign conservatively runs to completion.
        c.agg = std::make_unique<Aggregator>(
            StopPolicy{c.spec.stop_eps, c.spec.stop_conf},
            c.faults.size());
      }
      for (const std::uint64_t idx : c.recovered_done) {
        if (idx >= c.done.size() || c.done[idx]) continue;
        c.done[idx] = 1;
        ++c.completed;
      }
      if (c.recovered) recover_counts(c);
      c.recovered_done.clear();
      c.dispatched = c.completed;
      for (std::uint64_t i = 0; i < c.done.size(); ++i)
        if (!c.done[i]) c.pending.push_back(i);
      c.state = CampaignState::Running;
      if (c.completed == c.done.size())
        finish_campaign(c, CampaignState::Done, "");
    }
  }

  /// Rebuild the outcome histogram of a resumed campaign from its journaled
  /// result lines (status would otherwise only count post-restart results).
  void recover_counts(Campaign& c) {
    for (const std::string& line : journal.read_result_lines(c.id)) {
      try {
        const jsonl::Value v = jsonl::parse(line);
        if (const auto o = outcome_from_name(v.at("outcome").as_string()))
          ++c.counts[std::size_t(*o)];
      } catch (const std::exception&) {
        // A line recovery already skipped; counts stay approximate.
      }
    }
  }

  // --- campaign lifecycle --------------------------------------------------

  void finish_campaign(Campaign& c, CampaignState state, const std::string& error) {
    c.state = state;
    c.error = error;
    journal.record_terminal(c.id, state, error);
    switch (state) {
      case CampaignState::Done: ++stats.campaigns_done; break;
      case CampaignState::Cancelled: ++stats.campaigns_cancelled; break;
      case CampaignState::Failed: ++stats.campaigns_failed; break;
      default: break;
    }
    // Close out subscribers.
    StreamEnd end;
    end.id = c.id;
    end.state = state;
    end.error = error;
    const auto end_frame =
        frame_for(wire::MsgType::StreamEnd, encode_stream_end(end));
    for (const unsigned peer_id : c.subscribers) {
      Peer* p = find_peer(peer_id);
      if (p != nullptr && !p->defunct) {
        send_to_client(*p, end_frame);
        p->stream = 0;
      }
    }
    c.subscribers.clear();
    // Release the bulk memory; `done` stays (late results dedup against it
    // conceptually, though terminal campaigns drop results outright).
    c.pending.clear();
    c.faults.clear();
    c.faults.shrink_to_fit();
    c.welcome_frame.clear();
    c.welcome_frame.shrink_to_fit();
    c.ca = CalibratedApp{};
  }

  [[nodiscard]] Peer* find_peer(unsigned id) {
    for (const auto& p : peers)
      if (p->id == id) return p.get();
    return nullptr;
  }

  [[nodiscard]] std::uint32_t leased_workers(std::uint64_t campaign_id) const {
    std::uint32_t n = 0;
    for (const auto& p : peers)
      if (p->kind == PeerKind::Worker && !p->defunct && p->lease == campaign_id)
        ++n;
    return n;
  }

  [[nodiscard]] std::uint64_t campaign_inflight(std::uint64_t campaign_id) const {
    std::uint64_t n = 0;
    for (const auto& p : peers)
      if (p->kind == PeerKind::Worker && !p->defunct && p->lease == campaign_id)
        n += p->inflight.size();
    return n;
  }

  [[nodiscard]] std::vector<SchedEntry> sched_snapshot() const {
    std::vector<SchedEntry> entries;
    for (const auto& [id, c] : campaigns) {
      SchedEntry e;
      e.id = id;
      e.tenant = c.spec.tenant;
      e.weight = c.spec.weight;
      e.max_workers = c.spec.max_workers;
      e.pending = c.state == CampaignState::Running ? c.pending.size() : 0;
      e.workers = leased_workers(id);
      if (e.pending > 0 || e.workers > 0) entries.push_back(std::move(e));
    }
    return entries;
  }

  [[nodiscard]] CampaignStatus status_of(const Campaign& c, double now) const {
    CampaignStatus s;
    s.id = c.id;
    s.tenant = c.spec.tenant;
    s.name = c.spec.name;
    s.app_name = c.spec.app_name;
    s.state = c.state;
    s.total = c.spec.experiments;
    s.completed = c.completed;
    s.inflight = campaign_inflight(c.id);
    s.dispatched = c.dispatched;
    s.workers = leased_workers(c.id);
    s.weight = c.spec.weight;
    s.counts = c.counts;
    s.error = c.error;
    s.age_seconds = now - c.submitted_at;
    return s;
  }

  // --- worker plane --------------------------------------------------------

  void requeue_worker_inflight(Peer& w) {
    const auto it = campaigns.find(w.lease);
    if (it != campaigns.end() && !is_terminal(it->second.state)) {
      Campaign& c = it->second;
      // A stopping campaign wants fewer results, not replacements: dropping
      // a dead worker's in-flight work just shortens the drain.
      if (!c.stopping) {
        for (const auto& [index, since] : w.inflight) {
          (void)since;
          if (index < c.done.size() && !c.done[index]) {
            c.pending.push_front(index);
            ++stats.requeued;
          }
        }
      }
    }
    w.inflight.clear();
    if (it != campaigns.end()) maybe_finish_stopped(it->second);
  }

  /// Journal a campaign-scoped JSON line and fan it out to streaming
  /// subscribers. Summary lines ride the same path as result lines; journal
  /// recovery skips any line without an "index" field, so they are inert
  /// across restarts.
  void broadcast_line(Campaign& c, const std::string& line) {
    journal.append_result(c.id, line);
    if (c.subscribers.empty()) return;
    ResultLines rl;
    rl.id = c.id;
    rl.lines.push_back(line);
    const auto rl_frame =
        frame_for(wire::MsgType::ResultLines, encode_result_lines(rl));
    for (const unsigned peer_id : c.subscribers) {
      Peer* p = find_peer(peer_id);
      if (p != nullptr && !p->defunct) send_to_client(*p, rl_frame);
    }
  }

  void maybe_finish_stopped(Campaign& c) {
    if (!c.stopping || is_terminal(c.state)) return;
    if (campaign_inflight(c.id) == 0) finish_campaign(c, CampaignState::Done, "");
  }

  /// The sequential stop rule newly fired: freeze the queue, tell leased
  /// workers to drop their queued batches (CancelQueue), and emit the
  /// deterministic stopped_early summary. The campaign finishes Done once
  /// its in-flight experiments drain (results still journal on arrival).
  void stop_campaign_early(Campaign& c) {
    c.stopping = true;
    c.pending.clear();
    ++stats.campaigns_stopped_early;
    broadcast_line(c, c.agg->summary_json("stopped_early"));
    const auto cancel = frame_for(wire::MsgType::CancelQueue, {});
    for (const auto& p : peers) {
      if (p->kind != PeerKind::Worker || p->defunct || p->lease != c.id)
        continue;
      try {
        p->conn.send_all(cancel, /*timeout_s=*/2.0);
      } catch (const std::exception&) {
        p->defunct = true;
      }
    }
    maybe_finish_stopped(c);
  }

  void handle_result(Peer& w, const wire::ResultMsg& msg) {
    const auto it = campaigns.find(w.lease);
    if (it == campaigns.end())
      throw net::ProtocolError("result from unleased worker");
    Campaign& c = it->second;
    w.inflight.erase(msg.index);
    if (is_terminal(c.state)) return;  // cancelled while in flight: drop
    if (msg.index >= c.done.size())
      throw net::ProtocolError("result for unknown experiment " +
                               std::to_string(msg.index));
    if (c.done[msg.index]) {
      // Exactly-once: a requeued copy already landed; first result wins.
      ++stats.duplicate_results;
      return;
    }
    c.done[msg.index] = 1;
    ++c.completed;
    ++c.counts[std::size_t(msg.result.classification.outcome)];

    ExperimentRecord rec{std::size_t(msg.index), w.id,
                         experiment_seed(c.spec.campaign_seed, msg.index),
                         msg.result};
    // Journal first (durable before any ack leaves), then stream.
    broadcast_line(c, experiment_record_to_json(rec));
    ++stats.results_journaled;

    if (c.agg != nullptr && c.agg->add(rec)) {
      stop_campaign_early(c);
      return;
    }
    if (c.completed == c.done.size()) {
      // Full-run summary only when the aggregator saw every experiment (a
      // recovered campaign's aggregate is partial by construction).
      if (c.agg != nullptr && !c.stopping && c.agg->n() == c.done.size())
        broadcast_line(c, c.agg->summary_json("summary"));
      finish_campaign(c, CampaignState::Done, "");
      return;
    }
    maybe_finish_stopped(c);
  }

  /// Lease parked workers to campaigns by tenant fair share, then top up
  /// every leased worker's pipeline from its campaign's pending queue.
  void assign_and_dispatch() {
    const double now = mono_seconds();
    for (const auto& p : peers) {
      if (p->kind != PeerKind::Worker || p->defunct || p->lease != 0) continue;
      const std::uint64_t id = pick_campaign_for_worker(sched_snapshot());
      if (id == 0) break;  // nothing runnable; later workers see the same
      Campaign& c = campaigns.at(id);
      try {
        p->conn.send_all(c.welcome_frame);
      } catch (const std::exception&) {
        p->defunct = true;
        continue;
      }
      p->lease = id;
      p->liveness.reset(now);
    }

    for (const auto& p : peers) {
      if (p->kind != PeerKind::Worker || p->defunct || p->lease == 0) continue;
      const auto it = campaigns.find(p->lease);
      if (it == campaigns.end() || it->second.state != CampaignState::Running)
        continue;
      Campaign& c = it->second;
      const std::size_t target = std::size_t(p->slots) * scfg.pipeline_depth;
      std::vector<wire::BatchItem> items;
      while (p->inflight.size() + items.size() < target && !c.pending.empty()) {
        const std::uint64_t index = c.pending.front();
        c.pending.pop_front();
        if (c.done[index]) continue;
        items.push_back({index, c.faults[index].to_line()});
      }
      if (items.empty()) continue;
      try {
        p->conn.send_all(frame_for(wire::MsgType::Batch, wire::encode_batch(items)));
        for (const wire::BatchItem& item : items) {
          p->inflight.emplace(item.index, now);
          ++c.dispatched;
        }
      } catch (const std::exception&) {
        // Items never entered inflight; put them back for someone else.
        for (const wire::BatchItem& item : items) c.pending.push_front(item.index);
        p->defunct = true;
      }
    }
  }

  /// Part one worker from `donor_id` so its reconnect comes back through
  /// fair-share assignment (there is no in-band "switch campaigns" message —
  /// the Welcome fixed this connection's app).
  void part_one_worker(std::uint64_t donor_id) {
    Peer* victim = nullptr;
    for (const auto& p : peers) {
      if (p->kind != PeerKind::Worker || p->defunct || p->lease != donor_id)
        continue;
      if (victim == nullptr || p->inflight.size() < victim->inflight.size())
        victim = p.get();
    }
    if (victim == nullptr) return;
    requeue_worker_inflight(*victim);
    victim->conn.close();
    victim->defunct = true;
    ++stats.rebalance_moves;
  }

  void rebalance(double now) {
    if (now - last_rebalance < scfg.rebalance_interval_s) return;
    last_rebalance = now;
    // A parked worker about to be assigned covers any starvation already.
    for (const auto& p : peers)
      if (p->kind == PeerKind::Worker && !p->defunct && p->lease == 0) return;
    const auto entries = sched_snapshot();
    if (!has_starved_campaign(entries)) return;
    const std::uint64_t donor = pick_rebalance_donor(entries);
    if (donor != 0) part_one_worker(donor);
  }

  // --- client plane --------------------------------------------------------

  void send_to_client(Peer& p, std::span<const std::uint8_t> frame) {
    try {
      p.conn.send_all(frame, scfg.client_send_timeout_s);
    } catch (const std::exception&) {
      p.defunct = true;
    }
  }

  void handle_submit(Peer& p, std::span<const std::uint8_t> payload) {
    SubmitReply reply;
    std::optional<CampaignSpec> spec;
    try {
      spec = decode_submit(payload);
    } catch (const util::DeserializeError&) {
      throw;  // malformed bytes: drop the peer like any damaged frame
    } catch (const std::exception& e) {
      reply.error = e.what();  // well-formed but unusable spec: polite no
    }
    if (spec) {
      Campaign c;
      c.id = next_id++;
      c.spec = std::move(*spec);
      c.submitted_at = mono_seconds();
      journal.record_submit(c.id, c.spec);  // durable before the ack
      reply.ok = true;
      reply.id = c.id;
      campaigns.emplace(c.id, std::move(c));
      ++stats.campaigns_submitted;
      queue_calibrations();
    }
    send_to_client(p, frame_for(wire::MsgType::SubmitReply,
                                encode_submit_reply(reply)));
  }

  void handle_status(Peer& p, std::span<const std::uint8_t> payload) {
    const StatusRequest req = decode_status_request(payload);
    const double now = mono_seconds();
    std::vector<CampaignStatus> statuses;
    if (req.id == 0) {
      for (const auto& [id, c] : campaigns) statuses.push_back(status_of(c, now));
    } else if (const auto it = campaigns.find(req.id); it != campaigns.end()) {
      statuses.push_back(status_of(it->second, now));
    }
    send_to_client(p, frame_for(wire::MsgType::StatusReply,
                                encode_status_reply(statuses)));
  }

  void handle_cancel(Peer& p, std::span<const std::uint8_t> payload) {
    const CancelCampaign req = decode_cancel(payload);
    CancelReply reply;
    const auto it = campaigns.find(req.id);
    if (it == campaigns.end()) {
      reply.error = "unknown campaign " + std::to_string(req.id);
    } else if (is_terminal(it->second.state)) {
      reply.error = "campaign " + std::to_string(req.id) + " already " +
                    campaign_state_name(it->second.state);
    } else {
      finish_campaign(it->second, CampaignState::Cancelled, "");
      reply.ok = true;
    }
    send_to_client(p, frame_for(wire::MsgType::CancelReply,
                                encode_cancel_reply(reply)));
  }

  void handle_stream(Peer& p, std::span<const std::uint8_t> payload) {
    const StreamResults req = decode_stream_results(payload);
    const auto it = campaigns.find(req.id);
    if (it == campaigns.end()) {
      StreamEnd end;
      end.id = req.id;
      end.state = CampaignState::Failed;
      end.error = "unknown campaign " + std::to_string(req.id);
      send_to_client(p, frame_for(wire::MsgType::StreamEnd, encode_stream_end(end)));
      return;
    }
    Campaign& c = it->second;
    // Replay journaled history first, in batches, then subscribe for live
    // results — the client sees every line exactly once, in append order.
    ResultLines rl;
    rl.id = c.id;
    for (std::string& line : journal.read_result_lines(c.id)) {
      rl.lines.push_back(std::move(line));
      if (rl.lines.size() >= 256) {
        send_to_client(p, frame_for(wire::MsgType::ResultLines,
                                    encode_result_lines(rl)));
        rl.lines.clear();
        if (p.defunct) return;
      }
    }
    if (!rl.lines.empty())
      send_to_client(p, frame_for(wire::MsgType::ResultLines,
                                  encode_result_lines(rl)));
    if (p.defunct) return;
    if (is_terminal(c.state)) {
      StreamEnd end;
      end.id = c.id;
      end.state = c.state;
      end.error = c.error;
      send_to_client(p, frame_for(wire::MsgType::StreamEnd, encode_stream_end(end)));
    } else {
      p.stream = c.id;
      c.subscribers.push_back(p.id);
    }
  }

  // --- frame demux ---------------------------------------------------------

  void handle_frame(Peer& p, const net::Frame& f) {
    const auto type = wire::MsgType(f.type);
    if (p.kind == PeerKind::Unknown) {
      // First frame decides the peer kind.
      if (type == wire::MsgType::Hello) {
        const wire::Hello hello = wire::decode_hello(f.payload);
        p.kind = PeerKind::Worker;
        p.slots = hello.slots;
        ++stats.workers_joined;
        return;  // no Welcome yet: leased on assignment
      }
      switch (type) {
        case wire::MsgType::SubmitCampaign:
        case wire::MsgType::StatusRequest:
        case wire::MsgType::CancelCampaign:
        case wire::MsgType::StreamResults:
          p.kind = PeerKind::Client;
          ++stats.clients_served;
          break;
        default:
          throw net::ProtocolError("unexpected first message type " +
                                   std::to_string(f.type));
      }
    }
    if (p.kind == PeerKind::Worker) {
      switch (type) {
        case wire::MsgType::Result:
          if (p.lease == 0) throw net::ProtocolError("Result before Welcome");
          handle_result(p, wire::decode_result(f.payload));
          return;
        case wire::MsgType::Heartbeat:
          wire::decode_heartbeat(f.payload);  // liveness is any valid frame
          return;
        case wire::MsgType::CancelAck: {
          // Queued-but-never-run experiments the worker dropped on
          // CancelQueue: no result will come, so clear them from in-flight
          // accounting and re-check whether the stopping campaign drained.
          const wire::CancelAck ack = wire::decode_cancel_ack(f.payload);
          for (const std::uint64_t index : ack.dropped) p.inflight.erase(index);
          if (const auto it = campaigns.find(p.lease); it != campaigns.end())
            maybe_finish_stopped(it->second);
          return;
        }
        default:
          throw net::ProtocolError("unexpected worker message type " +
                                   std::to_string(f.type));
      }
    }
    switch (type) {
      case wire::MsgType::SubmitCampaign: handle_submit(p, f.payload); return;
      case wire::MsgType::StatusRequest: handle_status(p, f.payload); return;
      case wire::MsgType::CancelCampaign: handle_cancel(p, f.payload); return;
      case wire::MsgType::StreamResults: handle_stream(p, f.payload); return;
      default:
        throw net::ProtocolError("unexpected client message type " +
                                 std::to_string(f.type));
    }
  }

  /// Drain readable bytes and process complete frames. Returns false if the
  /// peer must be dropped (EOF or damage).
  bool service_readable(Peer& p) {
    std::uint8_t buf[64 * 1024];
    try {
      for (;;) {
        const auto got = p.conn.recv_some(buf);
        if (!got) return false;  // EOF
        if (*got == 0) break;    // drained
        p.reader.feed(std::span<const std::uint8_t>(buf, *got));
        bool frame_completed = false;
        while (auto f = p.reader.next()) {
          frame_completed = true;
          handle_frame(p, *f);
        }
        p.liveness.on_read(mono_seconds(), frame_completed, p.reader.buffered());
        if (p.defunct) return false;
      }
      return true;
    } catch (const std::exception&) {
      ++stats.frames_rejected;
      return false;
    }
  }

  void drop_peer(std::size_t i) {
    Peer& p = *peers[i];
    if (p.kind == PeerKind::Worker) {
      ++stats.workers_lost;
      requeue_worker_inflight(p);
    }
    if (p.stream != 0) {
      const auto it = campaigns.find(p.stream);
      if (it != campaigns.end()) {
        auto& subs = it->second.subscribers;
        subs.erase(std::remove(subs.begin(), subs.end(), p.id), subs.end());
      }
    }
    peers.erase(peers.begin() + std::ptrdiff_t(i));
  }

  void remove_defunct_peers() {
    for (std::size_t i = peers.size(); i-- > 0;)
      if (peers[i]->defunct) drop_peer(i);
  }

  void reap_silent_peers() {
    const double now = mono_seconds();
    for (std::size_t i = peers.size(); i-- > 0;) {
      const Peer& p = *peers[i];
      bool dead;
      if (p.kind == PeerKind::Client ||
          (p.kind == PeerKind::Worker && p.lease == 0)) {
        // Clients idle legitimately between requests, and a parked worker
        // sits silent in its Welcome wait — only the partial-frame deadline
        // applies (closes the drip-feed hole without reaping quiet peers).
        dead = p.liveness.partial_since != 0.0 &&
               now - p.liveness.partial_since >
                   scfg.worker_timeout_s + scfg.frame_grace_s;
      } else {
        dead = p.liveness.expired(now, scfg.worker_timeout_s, scfg.frame_grace_s);
      }
      if (dead) {
        ++stats.peers_timed_out;
        drop_peer(i);
      }
    }
  }

  // --- status display ------------------------------------------------------

  void print_status(double now) {
    if (scfg.status_interval_s <= 0.0) return;
    if (now - last_status < scfg.status_interval_s) return;
    last_status = now;
    std::FILE* out = scfg.status_out != nullptr ? scfg.status_out : stderr;
    unsigned fleet = 0;
    for (const auto& p : peers)
      if (p->kind == PeerKind::Worker && !p->defunct) ++fleet;
    std::fprintf(out, "[campaignd] t=%.1fs workers=%u campaigns=%zu\n",
                 now - started_at, fleet, campaigns.size());
    for (const auto& [id, c] : campaigns) {
      const CampaignStatus s = status_of(c, now);
      std::fprintf(out,
                   "[campaignd]   c%llu tenant=%s app=%s %s %llu/%llu "
                   "workers=%u weight=%u inflight=%llu%s%s\n",
                   (unsigned long long)s.id, s.tenant.c_str(), s.app_name.c_str(),
                   campaign_state_name(s.state), (unsigned long long)s.completed,
                   (unsigned long long)s.total, s.workers, s.weight,
                   (unsigned long long)s.inflight,
                   s.error.empty() ? "" : " error=", s.error.c_str());
    }
    std::fflush(out);
  }

  // --- main loop -----------------------------------------------------------

  ServiceReport run() {
    started_at = mono_seconds();
    last_rebalance = started_at;
    last_status = 0.0;
    net::ScopedSigint sigint(&stop_wake, scfg.handle_sigint);
    calib_thread = std::thread([this] { calib_main(); });

    queue_calibrations();  // recovered campaigns recalibrate immediately

    while (!stop_requested.load(std::memory_order_relaxed)) {
      integrate_calibrations();
      remove_defunct_peers();

      std::vector<pollfd> fds;
      fds.push_back({listener.fd(), POLLIN, 0});
      fds.push_back({stop_wake.read_fd(), POLLIN, 0});
      fds.push_back({calib_wake.read_fd(), POLLIN, 0});
      for (const auto& p : peers) fds.push_back({p->conn.fd(), POLLIN, 0});
      ::poll(fds.data(), nfds_t(fds.size()),
             int(scfg.poll_interval_s * 1000.0) + 1);

      if (fds[1].revents & POLLIN) {
        stop_wake.drain();
        stop_requested.store(true, std::memory_order_relaxed);
        break;
      }
      if (fds[2].revents & POLLIN) calib_wake.drain();

      if (fds[0].revents & POLLIN)
        while (auto conn = listener.accept()) {
          auto p = std::make_unique<Peer>(std::move(*conn), scfg.max_client_frame,
                                          mono_seconds());
          p->id = next_peer_id++;
          peers.push_back(std::move(p));
        }

      // fds[i + 3] belongs to peers[i] as the loop entered poll() (accepts
      // only append); service back-to-front so drop_peer()'s erase cannot
      // shift unvisited entries.
      const std::size_t polled = fds.size() - 3;
      for (std::size_t i = polled; i-- > 0;) {
        if ((fds[i + 3].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
        if (!service_readable(*peers[i])) drop_peer(i);
      }

      integrate_calibrations();
      reap_silent_peers();
      remove_defunct_peers();
      assign_and_dispatch();
      const double now = mono_seconds();
      rebalance(now);
      print_status(now);
    }

    // Graceful stop: workers exit cleanly; live campaigns stay journaled
    // and resume on the next start.
    const auto shutdown_frame = frame_for(wire::MsgType::Shutdown, {});
    for (const auto& p : peers) {
      if (p->kind != PeerKind::Worker || p->defunct) continue;
      try {
        p->conn.send_all(shutdown_frame, /*timeout_s=*/2.0);
      } catch (const std::exception&) {
        // Exiting anyway.
      }
    }
    listener.close();
    {
      std::lock_guard lock(calib_mutex);
      calib_stop = true;
    }
    calib_cv.notify_all();
    calib_thread.join();

    stats.wall_seconds = mono_seconds() - started_at;
    return stats;
  }
};

CampaignService::CampaignService(ServiceConfig scfg)
    : impl_(std::make_unique<Impl>(std::move(scfg))) {}

CampaignService::~CampaignService() = default;

std::uint16_t CampaignService::port() const noexcept {
  return impl_->listener.port();
}

ServiceReport CampaignService::run() { return impl_->run(); }

void CampaignService::request_stop() noexcept {
  impl_->stop_requested.store(true, std::memory_order_relaxed);
  impl_->stop_wake.notify();
}

}  // namespace gemfi::campaign::service
