// Crash-recovery journal for the campaign service.
//
// The service's durability story is two kinds of append-only JSONL files
// under one root directory:
//
//   <root>/campaigns.jsonl      lifecycle events, one JSON object per line:
//                                 {"event":"submit","id":N, ...spec fields}
//                                 {"event":"done"|"cancelled"|"failed","id":N[,"error":...]}
//   <root>/c<id>.results.jsonl  one experiment_record_to_json() line per
//                               completed experiment of campaign N — this IS
//                               the campaign's high-water mark.
//
// Every line is flushed as it is written, so a SIGKILLed service loses at
// most the line being written. On restart, recovery (a) truncates any
// partial trailing line left by the crash (a write cut mid-record), then
// (b) replays campaigns.jsonl to rebuild the campaign table, and (c) reads
// each live campaign's results file to recover the exact set of completed
// experiment ids. The service re-dispatches only the missing ids and appends
// only their records, so the final results file holds every experiment id
// exactly once — the exactly-once guarantee survives the crash.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "campaign/service/spec.hpp"

namespace gemfi::campaign::service {

/// One live (non-terminal) campaign reconstructed from the journal.
struct RecoveredCampaign {
  std::uint64_t id = 0;
  CampaignSpec spec;
  std::vector<std::uint64_t> done_indices;  // unique, from the results file
  std::uint64_t duplicate_result_lines = 0;  // same id journaled twice (bug tell)
};

struct RecoveredJournal {
  std::vector<RecoveredCampaign> live;  // submitted, not yet terminal
  std::uint64_t next_campaign_id = 1;   // max journaled id + 1
  std::uint64_t repaired_files = 0;     // files with a truncated tail removed
  std::uint64_t skipped_lines = 0;      // complete but unparsable lines
};

class Journal {
 public:
  /// Opens (creating the directory if needed) and recovers the journal at
  /// `root`. Repairs truncated tails in place before reading. Throws
  /// std::runtime_error if the directory or its files are unusable.
  explicit Journal(std::string root);
  ~Journal();

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  [[nodiscard]] const std::string& root() const noexcept { return root_; }
  /// What recovery found; populated once at construction.
  [[nodiscard]] const RecoveredJournal& recovered() const noexcept { return recovered_; }

  // --- appends (each line flushed before returning) ---
  void record_submit(std::uint64_t id, const CampaignSpec& spec);
  /// One line per completed calibration: the golden-run wall cost and the
  /// engine tier (fast mode) that produced it. Informational — recovery
  /// recognizes and skips it without counting it as damage.
  void record_calibrated(std::uint64_t id, double calib_wall_seconds, bool fastmode);
  void record_terminal(std::uint64_t id, CampaignState state, const std::string& error);
  void append_result(std::uint64_t id, const std::string& json_line);

  /// All complete result lines journaled so far for campaign `id`, in append
  /// order (used to replay history to a StreamResults subscriber).
  [[nodiscard]] std::vector<std::string> read_result_lines(std::uint64_t id) const;

  [[nodiscard]] std::string results_path(std::uint64_t id) const;

 private:
  std::string root_;
  RecoveredJournal recovered_;
  std::FILE* events_ = nullptr;  // campaigns.jsonl, append mode
  // LRU-of-one append handle for the hot campaign's results file. Instance
  // state, not thread_local: two Journals (a test, or a future multi-journal
  // process) must never share a cached handle keyed only by campaign id.
  std::FILE* results_cache_ = nullptr;
  std::uint64_t results_cache_id_ = 0;

  void append_event_line(const std::string& line);
};

}  // namespace gemfi::campaign::service
