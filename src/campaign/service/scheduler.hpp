// Fair-share worker-lease scheduler for the campaign service.
//
// The service multiplexes one worker fleet across many campaigns at
// worker-lease granularity: each connected worker is leased to exactly one
// campaign (its Welcome fixed the app it can run), and scheduling decisions
// are "which campaign gets this free worker?". Fairness is per TENANT, the
// paper's multi-user NoW setting: a tenant's share score is
// (workers leased to the tenant) / (sum of its runnable campaigns' weights),
// and a free worker goes to the tenant with the lowest score, then within
// the tenant to the runnable campaign with the fewest workers (ties broken
// by lowest id, so the order is deterministic and testable).
//
// These are pure functions over a snapshot vector so they unit-test without
// sockets; the service builds the snapshot from its campaign table each time
// a worker needs (re)assignment.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace gemfi::campaign::service {

/// Scheduler's view of one campaign.
struct SchedEntry {
  std::uint64_t id = 0;
  std::string tenant;
  std::uint32_t weight = 1;
  std::uint32_t max_workers = 0;  // 0 = unlimited
  std::uint64_t pending = 0;      // experiments not yet dispatched or done
  std::uint32_t workers = 0;      // workers currently leased
};

/// Pick the campaign a free worker should be leased to, honoring per-tenant
/// fair share and per-campaign quotas. Only campaigns with pending work and
/// headroom under max_workers are eligible. Returns the campaign id, or 0 if
/// nothing is runnable (the worker stays parked).
std::uint64_t pick_campaign_for_worker(const std::vector<SchedEntry>& entries);

/// When some runnable campaign is starved (pending work, zero workers) and no
/// free worker exists, pick a campaign to take one worker from: the one with
/// the most workers among those that can spare one (>= 2 workers, or >= 1
/// with no pending work left). Returns the donor campaign id, or 0 if no one
/// can spare a worker (then the starved campaign waits for a completion).
std::uint64_t pick_rebalance_donor(const std::vector<SchedEntry>& entries);

/// True if some campaign has pending work and zero leased workers.
bool has_starved_campaign(const std::vector<SchedEntry>& entries);

}  // namespace gemfi::campaign::service
