// Blocking client for the campaign service's v2 control plane — the library
// behind gemfi_submit and the service tests. One Client wraps one TCP
// connection; requests are strictly serial (send, wait for the matching
// reply), which is all the CLI and tests need.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "campaign/service/control.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"

namespace gemfi::campaign::service {

class Client {
 public:
  /// Connect with bounded backoff (same policy as a worker). Throws
  /// net::SocketError when the budget runs out.
  static Client connect(const std::string& host, std::uint16_t port,
                        unsigned attempts = 10, double backoff_s = 0.1);

  /// Submit a campaign; returns the assigned id. Throws std::runtime_error
  /// if the service rejects the spec (carrying the service's reason).
  std::uint64_t submit(const CampaignSpec& spec);

  /// Status of one campaign (or every campaign with id 0).
  std::vector<CampaignStatus> status(std::uint64_t id = 0);

  /// Cancel; throws std::runtime_error if the service refuses (unknown id,
  /// already terminal).
  void cancel(std::uint64_t id);

  /// Subscribe to a campaign's results: `on_line` receives every journaled
  /// JSONL record exactly once (history first, then live), and the call
  /// returns the campaign's terminal state. Throws on connection loss or if
  /// the service reports the stream failed (unknown campaign).
  CampaignState stream(std::uint64_t id,
                       const std::function<void(const std::string&)>& on_line,
                       double timeout_s = 600.0);

 private:
  Client() : reader_(1 << 24) {}

  /// Next complete frame, waiting up to `timeout_s`. Throws net::SocketError
  /// on EOF or timeout, net::ProtocolError on damage.
  net::Frame next_frame(double timeout_s);

  net::TcpConn conn_;
  net::FrameReader reader_;
};

}  // namespace gemfi::campaign::service
