#include "campaign/service/control.hpp"

#include "util/bytesio.hpp"

namespace gemfi::campaign::service {

namespace {

using util::ByteReader;
using util::ByteWriter;
using util::DeserializeError;

std::uint8_t checked_enum(ByteReader& r, unsigned count, const char* what) {
  const std::uint8_t v = r.get_u8();
  if (v >= count)
    throw DeserializeError(std::string("out-of-range ") + what +
                           " discriminator: " + std::to_string(v));
  return v;
}

void expect_end(const ByteReader& r, const char* what) {
  if (!r.at_end())
    throw DeserializeError(std::string("trailing bytes in ") + what);
}

}  // namespace

std::vector<std::uint8_t> encode_submit(const CampaignSpec& spec) {
  ByteWriter w;
  w.put_string(spec.tenant);
  w.put_string(spec.name);
  w.put_string(spec.app_name);
  w.put_bool(spec.paper_scale);
  w.put_u64(spec.app_scale_seed);
  w.put_u64(spec.experiments);
  w.put_u64(spec.campaign_seed);
  w.put_u32(spec.weight);
  w.put_u32(spec.max_workers);
  w.put_u8(spec.cpu);
  w.put_u64(spec.watchdog_mult);
  w.put_f64(spec.deadline_seconds);
  w.put_u32(spec.max_retries);
  w.put_f64(spec.retry_backoff);
  w.put_bool(spec.predecode);
  w.put_bool(spec.fastpath);
  w.put_bool(spec.fastmode);  // v4
  w.put_f64(spec.stop_eps);   // v5
  w.put_f64(spec.stop_conf);  // v5
  return w.take();
}

CampaignSpec decode_submit(std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  CampaignSpec s;
  s.tenant = r.get_string();
  s.name = r.get_string();
  s.app_name = r.get_string();
  s.paper_scale = r.get_bool();
  s.app_scale_seed = r.get_u64();
  s.experiments = r.get_u64();
  s.campaign_seed = r.get_u64();
  s.weight = r.get_u32();
  s.max_workers = r.get_u32();
  s.cpu = r.get_u8();
  s.watchdog_mult = r.get_u64();
  s.deadline_seconds = r.get_f64();
  s.max_retries = r.get_u32();
  s.retry_backoff = r.get_f64();
  s.predecode = r.get_bool();
  s.fastpath = r.get_bool();
  s.fastmode = r.get_bool();  // v4
  s.stop_eps = r.get_f64();   // v5
  s.stop_conf = r.get_f64();  // v5
  expect_end(r, "SubmitCampaign");
  s.validate();  // std::invalid_argument on an unusable spec
  return s;
}

std::vector<std::uint8_t> encode_submit_reply(const SubmitReply& rep) {
  ByteWriter w;
  w.put_bool(rep.ok);
  w.put_u64(rep.id);
  w.put_string(rep.error);
  return w.take();
}

SubmitReply decode_submit_reply(std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  SubmitReply rep;
  rep.ok = r.get_bool();
  rep.id = r.get_u64();
  rep.error = r.get_string();
  expect_end(r, "SubmitReply");
  return rep;
}

std::vector<std::uint8_t> encode_status_request(const StatusRequest& req) {
  ByteWriter w;
  w.put_u64(req.id);
  return w.take();
}

StatusRequest decode_status_request(std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  StatusRequest req;
  req.id = r.get_u64();
  expect_end(r, "StatusRequest");
  return req;
}

std::vector<std::uint8_t> encode_status_reply(
    const std::vector<CampaignStatus>& statuses) {
  ByteWriter w;
  w.put_u32(std::uint32_t(statuses.size()));
  for (const CampaignStatus& s : statuses) {
    w.put_u64(s.id);
    w.put_string(s.tenant);
    w.put_string(s.name);
    w.put_string(s.app_name);
    w.put_u8(std::uint8_t(s.state));
    w.put_u64(s.total);
    w.put_u64(s.completed);
    w.put_u64(s.inflight);
    w.put_u64(s.dispatched);
    w.put_u32(s.workers);
    w.put_u32(s.weight);
    for (const std::uint64_t c : s.counts) w.put_u64(c);
    w.put_string(s.error);
    w.put_f64(s.age_seconds);
  }
  return w.take();
}

std::vector<CampaignStatus> decode_status_reply(
    std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  const std::uint32_t count = r.get_u32();
  if (count > 1u << 16) throw DeserializeError("implausible status count");
  std::vector<CampaignStatus> statuses;
  statuses.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    CampaignStatus s;
    s.id = r.get_u64();
    s.tenant = r.get_string();
    s.name = r.get_string();
    s.app_name = r.get_string();
    s.state = static_cast<CampaignState>(
        checked_enum(r, kNumCampaignStates, "campaign state"));
    s.total = r.get_u64();
    s.completed = r.get_u64();
    s.inflight = r.get_u64();
    s.dispatched = r.get_u64();
    s.workers = r.get_u32();
    s.weight = r.get_u32();
    for (std::uint64_t& c : s.counts) c = r.get_u64();
    s.error = r.get_string();
    s.age_seconds = r.get_f64();
    statuses.push_back(std::move(s));
  }
  expect_end(r, "StatusReply");
  return statuses;
}

std::vector<std::uint8_t> encode_cancel(const CancelCampaign& c) {
  ByteWriter w;
  w.put_u64(c.id);
  return w.take();
}

CancelCampaign decode_cancel(std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  CancelCampaign c;
  c.id = r.get_u64();
  expect_end(r, "CancelCampaign");
  return c;
}

std::vector<std::uint8_t> encode_cancel_reply(const CancelReply& rep) {
  ByteWriter w;
  w.put_bool(rep.ok);
  w.put_string(rep.error);
  return w.take();
}

CancelReply decode_cancel_reply(std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  CancelReply rep;
  rep.ok = r.get_bool();
  rep.error = r.get_string();
  expect_end(r, "CancelReply");
  return rep;
}

std::vector<std::uint8_t> encode_stream_results(const StreamResults& s) {
  ByteWriter w;
  w.put_u64(s.id);
  return w.take();
}

StreamResults decode_stream_results(std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  StreamResults s;
  s.id = r.get_u64();
  expect_end(r, "StreamResults");
  return s;
}

std::vector<std::uint8_t> encode_result_lines(const ResultLines& rl) {
  ByteWriter w;
  w.put_u64(rl.id);
  w.put_u32(std::uint32_t(rl.lines.size()));
  for (const std::string& line : rl.lines) w.put_string(line);
  return w.take();
}

ResultLines decode_result_lines(std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  ResultLines rl;
  rl.id = r.get_u64();
  const std::uint32_t count = r.get_u32();
  if (count > 1u << 20) throw DeserializeError("implausible result-line count");
  rl.lines.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) rl.lines.push_back(r.get_string());
  expect_end(r, "ResultLines");
  return rl;
}

std::vector<std::uint8_t> encode_stream_end(const StreamEnd& e) {
  ByteWriter w;
  w.put_u64(e.id);
  w.put_u8(std::uint8_t(e.state));
  w.put_string(e.error);
  return w.take();
}

StreamEnd decode_stream_end(std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  StreamEnd e;
  e.id = r.get_u64();
  e.state = static_cast<CampaignState>(
      checked_enum(r, kNumCampaignStates, "campaign state"));
  e.error = r.get_string();
  expect_end(r, "StreamEnd");
  return e;
}

}  // namespace gemfi::campaign::service
