#include "campaign/wire.hpp"

#include <limits>

namespace gemfi::campaign::wire {

namespace {

using util::ByteReader;
using util::ByteWriter;
using util::DeserializeError;

std::uint8_t checked_enum(ByteReader& r, unsigned count, const char* what) {
  const std::uint8_t v = r.get_u8();
  if (v >= count)
    throw DeserializeError(std::string("out-of-range ") + what + " discriminator: " +
                           std::to_string(v));
  return v;
}

}  // namespace

void put_result(ByteWriter& w, const ExperimentResult& er) {
  w.put_u8(std::uint8_t(er.classification.outcome));
  w.put_f64(er.classification.metric);
  w.put_u8(std::uint8_t(er.exit_reason));
  w.put_u8(std::uint8_t(er.trap));
  w.put_string(er.fault.to_line());
  w.put_bool(er.fault_applied);
  w.put_f64(er.time_fraction);
  w.put_u64(er.sim_ticks);
  w.put_f64(er.wall_seconds);
  w.put_u32(er.retries);
  w.put_string(er.sim_error);
  w.put_u8(er.ckpt_version);
  w.put_u64(er.restore_pages);
  w.put_u64(er.restore_bytes);
  w.put_u32(std::uint32_t(er.syscall_plans.size()));
  for (const fi::SyscallFaultPlan& p : er.syscall_plans) w.put_string(p.to_line());
  w.put_u8(std::uint8_t(er.syscall_class.outcome));
  w.put_u32(er.syscall_class.cascade_len);
  w.put_bool(er.syscall_class.injected);
  w.put_bool(er.syscall_class.unrealistic);
  w.put_u64(er.syscalls_injected);
  w.put_bool(er.fastmode);  // v4
}

ExperimentResult get_result(ByteReader& r) {
  ExperimentResult er;
  er.classification.outcome =
      static_cast<apps::Outcome>(checked_enum(r, apps::kNumOutcomes, "outcome"));
  er.classification.metric = r.get_f64();
  er.exit_reason = static_cast<sim::ExitReason>(
      checked_enum(r, unsigned(sim::ExitReason::Deadline) + 1, "exit reason"));
  er.trap = static_cast<cpu::TrapKind>(
      checked_enum(r, unsigned(cpu::TrapKind::Halt) + 1, "trap kind"));
  er.fault = fi::parse_fault(r.get_string());
  er.fault_applied = r.get_bool();
  er.time_fraction = r.get_f64();
  er.sim_ticks = r.get_u64();
  er.wall_seconds = r.get_f64();
  er.retries = r.get_u32();
  er.sim_error = r.get_string();
  er.ckpt_version = r.get_u8();
  er.restore_pages = r.get_u64();
  er.restore_bytes = r.get_u64();
  const std::uint32_t n_plans = r.get_u32();
  if (n_plans > 1u << 16) throw DeserializeError("implausible syscall plan count");
  er.syscall_plans.reserve(n_plans);
  for (std::uint32_t i = 0; i < n_plans; ++i)
    er.syscall_plans.push_back(fi::parse_syscall_plan(r.get_string()));
  er.syscall_class.outcome = static_cast<SyscallOutcome>(
      checked_enum(r, kNumSyscallOutcomes, "syscall outcome"));
  er.syscall_class.cascade_len = r.get_u32();
  er.syscall_class.injected = r.get_bool();
  er.syscall_class.unrealistic = r.get_bool();
  er.syscalls_injected = r.get_u64();
  er.fastmode = r.get_bool();  // v4
  return er;
}

std::vector<std::uint8_t> encode_hello(const Hello& h) {
  ByteWriter w;
  w.put_u32(h.version);
  w.put_u32(h.slots);
  return w.take();
}

Hello decode_hello(std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  Hello h;
  h.version = r.get_u32();
  h.slots = r.get_u32();
  if (h.version == 0 || h.version > kProtocolVersion)
    throw DeserializeError("protocol version mismatch: worker speaks v" +
                           std::to_string(h.version) + ", master accepts up to v" +
                           std::to_string(kProtocolVersion));
  if (h.slots == 0 || h.slots > 1024)
    throw DeserializeError("implausible worker slot count: " + std::to_string(h.slots));
  if (!r.at_end()) throw DeserializeError("trailing bytes in Hello");
  return h;
}

Welcome Welcome::from(const CalibratedApp& ca, const apps::AppScale& scale,
                      const CampaignConfig& cfg) {
  Welcome w;
  w.app_name = ca.app.name;
  w.paper_scale = scale.paper;
  w.app_scale_seed = scale.seed;
  w.golden_output = ca.app.golden_output;
  w.golden_insts = ca.app.golden_insts;
  w.golden_kernel_insts = ca.app.golden_kernel_insts;
  w.app_golden_ticks = ca.app.golden_ticks;
  w.golden_ticks = ca.golden_ticks;
  w.golden_committed = ca.golden_committed;
  w.kernel_fetches = ca.kernel_fetches;
  w.ticks_to_checkpoint = ca.ticks_to_checkpoint;
  w.checkpoint = ca.checkpoint.bytes();
  w.cpu = std::uint8_t(cfg.cpu);
  w.switch_to_atomic_after_fault = cfg.switch_to_atomic_after_fault;
  w.use_checkpoint = cfg.use_checkpoint;
  w.predecode = cfg.predecode;
  w.fastpath = cfg.fastpath;
  w.fastmode = cfg.fastmode;
  w.shared_baseline = cfg.shared_baseline;
  w.watchdog_mult = cfg.watchdog_mult;
  w.campaign_seed = cfg.campaign_seed;
  w.deadline_seconds = cfg.deadline_seconds;
  w.max_retries = cfg.max_retries;
  w.retry_backoff = cfg.retry_backoff;
  w.syscall_plan_lines.reserve(cfg.syscall_plans.size());
  for (const fi::SyscallFaultPlan& p : cfg.syscall_plans)
    w.syscall_plan_lines.push_back(p.to_line());
  w.random_syscall_faults = cfg.random_syscall_faults;
  return w;
}

CalibratedApp Welcome::rebuild_app() const {
  apps::AppScale scale;
  scale.paper = paper_scale;
  scale.seed = app_scale_seed;
  CalibratedApp ca;
  ca.app = apps::build_app(app_name, scale);
  ca.app.golden_output = golden_output;
  ca.app.golden_insts = golden_insts;
  ca.app.golden_kernel_insts = golden_kernel_insts;
  ca.app.golden_ticks = app_golden_ticks;
  ca.checkpoint = chkpt::Checkpoint::from_bytes(checkpoint);
  ca.golden_ticks = golden_ticks;
  ca.golden_committed = golden_committed;
  ca.kernel_fetches = kernel_fetches;
  ca.ticks_to_checkpoint = ticks_to_checkpoint;
  return ca;
}

CampaignConfig Welcome::rebuild_config() const {
  CampaignConfig cfg;
  cfg.cpu = static_cast<sim::CpuKind>(cpu);
  cfg.switch_to_atomic_after_fault = switch_to_atomic_after_fault;
  cfg.use_checkpoint = use_checkpoint;
  cfg.predecode = predecode;
  cfg.fastpath = fastpath;
  cfg.fastmode = fastmode;
  cfg.shared_baseline = shared_baseline;
  cfg.watchdog_mult = watchdog_mult;
  cfg.campaign_seed = campaign_seed;
  cfg.deadline_seconds = deadline_seconds;
  cfg.max_retries = max_retries;
  cfg.retry_backoff = retry_backoff;
  cfg.syscall_plans.reserve(syscall_plan_lines.size());
  for (const std::string& line : syscall_plan_lines)
    cfg.syscall_plans.push_back(fi::parse_syscall_plan(line));
  cfg.random_syscall_faults = random_syscall_faults;
  return cfg;
}

std::vector<std::uint8_t> encode_welcome(const Welcome& w) {
  ByteWriter b;
  b.reserve(w.checkpoint.size() + w.golden_output.size() + 256);
  b.put_string(w.app_name);
  b.put_bool(w.paper_scale);
  b.put_u64(w.app_scale_seed);
  b.put_string(w.golden_output);
  b.put_u64(w.golden_insts);
  b.put_u64(w.golden_kernel_insts);
  b.put_u64(w.app_golden_ticks);
  b.put_u64(w.golden_ticks);
  b.put_u64(w.golden_committed);
  b.put_u64(w.kernel_fetches);
  b.put_u64(w.ticks_to_checkpoint);
  b.put_blob(w.checkpoint);
  b.put_u8(w.cpu);
  b.put_bool(w.switch_to_atomic_after_fault);
  b.put_bool(w.use_checkpoint);
  b.put_bool(w.predecode);
  b.put_bool(w.fastpath);
  b.put_bool(w.shared_baseline);
  b.put_u64(w.watchdog_mult);
  b.put_u64(w.campaign_seed);
  b.put_f64(w.deadline_seconds);
  b.put_u32(w.max_retries);
  b.put_f64(w.retry_backoff);
  b.put_u32(std::uint32_t(w.syscall_plan_lines.size()));
  for (const std::string& line : w.syscall_plan_lines) b.put_string(line);
  b.put_bool(w.random_syscall_faults);
  b.put_bool(w.fastmode);  // v4: appended so a v3 decoder sees trailing bytes
  return b.take();
}

Welcome decode_welcome(std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  Welcome w;
  w.app_name = r.get_string();
  w.paper_scale = r.get_bool();
  w.app_scale_seed = r.get_u64();
  w.golden_output = r.get_string();
  w.golden_insts = r.get_u64();
  w.golden_kernel_insts = r.get_u64();
  w.app_golden_ticks = r.get_u64();
  w.golden_ticks = r.get_u64();
  w.golden_committed = r.get_u64();
  w.kernel_fetches = r.get_u64();
  w.ticks_to_checkpoint = r.get_u64();
  w.checkpoint = r.get_blob();
  w.cpu = checked_enum(r, unsigned(sim::CpuKind::Pipelined) + 1, "cpu kind");
  w.switch_to_atomic_after_fault = r.get_bool();
  w.use_checkpoint = r.get_bool();
  w.predecode = r.get_bool();
  w.fastpath = r.get_bool();
  w.shared_baseline = r.get_bool();
  w.watchdog_mult = r.get_u64();
  w.campaign_seed = r.get_u64();
  w.deadline_seconds = r.get_f64();
  w.max_retries = r.get_u32();
  w.retry_backoff = r.get_f64();
  const std::uint32_t n_plans = r.get_u32();
  if (n_plans > 1u << 16) throw DeserializeError("implausible syscall plan count");
  w.syscall_plan_lines.reserve(n_plans);
  for (std::uint32_t i = 0; i < n_plans; ++i)
    w.syscall_plan_lines.push_back(r.get_string());
  w.random_syscall_faults = r.get_bool();
  w.fastmode = r.get_bool();  // v4
  if (!r.at_end()) throw DeserializeError("trailing bytes in Welcome");
  return w;
}

std::vector<std::uint8_t> encode_batch(const std::vector<BatchItem>& items) {
  ByteWriter w;
  w.put_u32(std::uint32_t(items.size()));
  for (const BatchItem& it : items) {
    w.put_u64(it.index);
    w.put_string(it.fault_line);
  }
  return w.take();
}

std::vector<BatchItem> decode_batch(std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  const std::uint32_t count = r.get_u32();
  if (count > 1u << 20) throw DeserializeError("implausible batch size");
  std::vector<BatchItem> items;
  items.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    BatchItem it;
    it.index = r.get_u64();
    it.fault_line = r.get_string();
    items.push_back(std::move(it));
  }
  if (!r.at_end()) throw DeserializeError("trailing bytes in Batch");
  return items;
}

std::vector<std::uint8_t> encode_result(const ResultMsg& msg) {
  ByteWriter w;
  w.put_u64(msg.index);
  put_result(w, msg.result);
  return w.take();
}

ResultMsg decode_result(std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  ResultMsg msg;
  msg.index = r.get_u64();
  msg.result = get_result(r);
  if (!r.at_end()) throw DeserializeError("trailing bytes in Result");
  return msg;
}

std::vector<std::uint8_t> encode_heartbeat(const Heartbeat& hb) {
  ByteWriter w;
  w.put_u64(hb.sequence);
  w.put_u32(hb.busy_slots);
  return w.take();
}

Heartbeat decode_heartbeat(std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  Heartbeat hb;
  hb.sequence = r.get_u64();
  hb.busy_slots = r.get_u32();
  if (!r.at_end()) throw DeserializeError("trailing bytes in Heartbeat");
  return hb;
}

std::vector<std::uint8_t> encode_cancel_ack(const CancelAck& ack) {
  ByteWriter w;
  w.put_u32(std::uint32_t(ack.dropped.size()));
  for (const std::uint64_t idx : ack.dropped) w.put_u64(idx);
  return w.take();
}

CancelAck decode_cancel_ack(std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  const std::uint32_t n = r.get_u32();
  // A worker's queue is bounded by slots x pipeline depth; anything huge is
  // a hostile or corrupted frame, not a real ack.
  if (n > 1u << 20) throw DeserializeError("CancelAck count out of range");
  CancelAck ack;
  ack.dropped.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) ack.dropped.push_back(r.get_u64());
  if (!r.at_end()) throw DeserializeError("trailing bytes in CancelAck");
  return ack;
}

}  // namespace gemfi::campaign::wire
