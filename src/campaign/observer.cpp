#include "campaign/observer.hpp"

#include <chrono>
#include <stdexcept>

#include "campaign/jsonl.hpp"

namespace gemfi::campaign {

namespace {

double monotonic_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::string experiment_record_to_json(const ExperimentRecord& rec, bool include_host_timing) {
  const ExperimentResult& er = rec.result;
  jsonl::ObjectWriter w;
  w.field("index", std::uint64_t(rec.index))
      .field("worker", std::uint64_t(rec.worker))
      .field("seed", rec.seed)
      .field("fault", er.fault.to_line())
      .field("location", fi::fault_location_name(er.fault.location))
      .field("outcome", apps::outcome_name(er.classification.outcome))
      .field("metric", er.classification.metric)
      .field("exit", sim::exit_reason_name(er.exit_reason))
      .field("trap", cpu::trap_name(er.trap))
      .field("applied", er.fault_applied)
      .field("time_fraction", er.time_fraction)
      .field("sim_ticks", er.sim_ticks);
  if (include_host_timing)
    w.field("wall_seconds", er.wall_seconds).field("fastmode", er.fastmode);
  w.field("retries", std::uint64_t(er.retries));
  if (er.ckpt_version != 0) {
    w.field("ckpt_format",
            chkpt::checkpoint_format_name(chkpt::CheckpointFormat(er.ckpt_version)))
        .field("restore_pages", er.restore_pages)
        .field("restore_bytes", er.restore_bytes);
  }
  if (!er.syscall_plans.empty()) {
    // All armed plans, '; '-joined in their canonical grammar so a replay
    // can re-parse the exact set from the record alone.
    std::string plans;
    for (const fi::SyscallFaultPlan& p : er.syscall_plans) {
      if (!plans.empty()) plans += "; ";
      plans += p.to_line();
    }
    w.field("syscall_plan", plans)
        .field("syscall_outcome", syscall_outcome_name(er.syscall_class.outcome))
        .field("cascade", std::uint64_t(er.syscall_class.cascade_len))
        .field("syscalls_injected", er.syscalls_injected);
    if (er.syscall_class.unrealistic) w.field("unrealistic_errno", true);
  }
  if (!er.sim_error.empty()) w.field("error", er.sim_error);
  return w.str();
}

std::string calibration_record_to_json(const std::string& app_name, const CalibratedApp& ca,
                                       bool fastmode) {
  jsonl::ObjectWriter w;
  w.field("event", "calibrated")
      .field("app", app_name)
      .field("golden_insts", ca.golden_committed)
      .field("kernel_fetches", ca.kernel_fetches)
      .field("golden_ticks", ca.golden_ticks)
      .field("calib_wall_seconds", ca.calib_wall_seconds)
      .field("fastmode", fastmode);
  return w.str();
}

JsonlSink::JsonlSink(const std::string& path)
    : owned_(path, std::ios::out | std::ios::trunc), os_(&owned_) {
  if (!owned_) throw std::runtime_error("cannot open JSONL output file: " + path);
}

JsonlSink::JsonlSink(std::ostream& os) : os_(&os) {}

void JsonlSink::on_experiment(const ExperimentRecord& rec) {
  write_line(experiment_record_to_json(rec));
}

void JsonlSink::write_line(const std::string& line) {
  std::lock_guard lock(mutex_);
  *os_ << line << '\n';
  os_->flush();
  ++lines_;
}

ProgressPrinter::ProgressPrinter(std::FILE* out, double min_interval_seconds)
    : out_(out), min_interval_(min_interval_seconds) {}

void ProgressPrinter::on_campaign_begin(std::size_t total_experiments) {
  std::lock_guard lock(mutex_);
  total_ = total_experiments;
  done_ = 0;
  for (std::size_t& c : counts_) c = 0;
  mean_wall_ = {};
  t0_ = monotonic_seconds();
  last_print_ = 0.0;  // force the first line
}

void ProgressPrinter::on_experiment(const ExperimentRecord& rec) {
  std::lock_guard lock(mutex_);
  ++done_;
  ++counts_[std::size_t(rec.result.classification.outcome)];
  mean_wall_.add(rec.result.wall_seconds);

  const double now = monotonic_seconds();
  const bool final_line = total_ != 0 && done_ >= total_;
  if (!final_line && now - last_print_ < min_interval_) return;
  last_print_ = now;

  const double elapsed = now - t0_;
  // ETA from observed campaign throughput, which already reflects the
  // worker parallelism (the per-experiment mean does not).
  const double eta =
      done_ == 0 || total_ < done_ ? 0.0 : elapsed * double(total_ - done_) / double(done_);
  std::string hist;
  for (unsigned o = 0; o < apps::kNumOutcomes; ++o) {
    if (counts_[o] == 0) continue;
    if (!hist.empty()) hist += ' ';
    hist += apps::outcome_name(static_cast<apps::Outcome>(o));
    hist += '=';
    hist += std::to_string(counts_[o]);
  }
  std::fprintf(out_, "progress: %zu/%zu (%.0f%%) [%s] mean=%.3fs eta=%.0fs\n", done_,
               total_, total_ == 0 ? 0.0 : 100.0 * double(done_) / double(total_),
               hist.c_str(), mean_wall_.mean(), eta);
  std::fflush(out_);
}

}  // namespace gemfi::campaign
