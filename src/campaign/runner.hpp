// Campaign runner: calibration, random fault generation, experiment
// execution (optionally fast-forwarded from a checkpoint), and parallel
// campaign execution — the machinery behind the paper's Sec. IV/V results.
#pragma once

#include <array>
#include <optional>
#include <string>
#include <vector>

#include "apps/app.hpp"
#include "campaign/classify.hpp"
#include "chkpt/checkpoint.hpp"
#include "fi/fault.hpp"
#include "util/rng.hpp"

namespace gemfi::campaign {

struct CampaignConfig {
  sim::CpuKind cpu = sim::CpuKind::Pipelined;
  bool switch_to_atomic_after_fault = true;  // Sec. IV-B-1 speed trick
  bool use_checkpoint = true;                // Sec. III-D fast-forwarding
  unsigned workers = 1;                      // local experiment parallelism
  std::uint64_t watchdog_mult = 8;           // watchdog = mult * golden ticks
};

/// An app plus everything calibration learned about its fault-free run.
struct CalibratedApp {
  apps::App app;
  chkpt::Checkpoint checkpoint;          // taken at fi_read_init_all()
  std::uint64_t golden_ticks = 0;        // full run, campaign CPU model
  std::uint64_t golden_committed = 0;
  std::uint64_t kernel_fetches = 0;      // fetches inside the FI window
  std::uint64_t ticks_to_checkpoint = 0; // pre-checkpoint (init+boot) ticks
};

/// Run the app fault-free on the campaign CPU model, capture the checkpoint
/// at fi_read_init_all(), verify the output matches the golden model
/// (paper Sec. IV-A validation), and measure the run costs.
/// Throws std::runtime_error if the guest output mismatches the golden.
CalibratedApp calibrate(apps::App app, const CampaignConfig& cfg);

/// Uniform single-event-upset fault at the given location: uniform Time over
/// the FI window, uniform bit, uniform register (Sec. IV-B-1 methodology).
fi::Fault random_fault(util::Rng& rng, fi::FaultLocation location,
                       std::uint64_t kernel_fetches);

/// Uniform over all locations as well.
fi::Fault random_fault_any(util::Rng& rng, std::uint64_t kernel_fetches);

struct ExperimentResult {
  Classification classification;
  sim::ExitReason exit_reason = sim::ExitReason::AllThreadsExited;
  cpu::TrapKind trap = cpu::TrapKind::None;
  fi::Fault fault;
  bool fault_applied = false;
  double time_fraction = 0.0;   // fault time / kernel length (Fig. 6 x-axis)
  std::uint64_t sim_ticks = 0;  // simulated ticks consumed by the experiment
  double wall_seconds = 0.0;    // host wall time of the experiment
};

/// Run one fault-injection experiment.
ExperimentResult run_experiment(const CalibratedApp& ca, const fi::Fault& fault,
                                const CampaignConfig& cfg);

struct CampaignReport {
  std::array<std::size_t, apps::kNumOutcomes> counts{};  // by Outcome
  std::vector<ExperimentResult> results;
  double wall_seconds = 0.0;  // whole campaign, host wall time

  [[nodiscard]] std::size_t total() const noexcept;
  [[nodiscard]] double fraction(apps::Outcome o) const noexcept;
};

/// Run a whole campaign (one experiment per fault) with cfg.workers-way
/// parallelism on this host.
CampaignReport run_campaign(const CalibratedApp& ca, const std::vector<fi::Fault>& faults,
                            const CampaignConfig& cfg);

}  // namespace gemfi::campaign
