// Campaign runner: calibration, random fault generation, experiment
// execution (optionally fast-forwarded from a checkpoint), and parallel
// campaign execution — the machinery behind the paper's Sec. IV/V results.
#pragma once

#include <array>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "apps/app.hpp"
#include "campaign/classify.hpp"
#include "chkpt/checkpoint.hpp"
#include "fi/fault.hpp"
#include "fi/syscall_fault.hpp"
#include "util/rng.hpp"

namespace gemfi::campaign {

class CampaignObserver;

struct CampaignConfig {
  sim::CpuKind cpu = sim::CpuKind::Pipelined;
  bool switch_to_atomic_after_fault = true;  // Sec. IV-B-1 speed trick
  bool use_checkpoint = true;                // Sec. III-D fast-forwarding
  bool predecode = true;                     // predecoded-instruction cache
  bool fastpath = true;                      // timing-model fast lane (A/B)
  bool fastmode = true;                      // superblock golden-path tier (A/B)
  unsigned workers = 1;                      // local experiment parallelism
  std::uint64_t watchdog_mult = 8;           // watchdog = mult * golden ticks

  /// Checkpoint encoding captured at calibration. v2 (sparse, page-granular,
  /// optionally RLE-compressed) is the default; v1 writes the legacy flat
  /// blob for compatibility testing.
  chkpt::CheckpointFormat ckpt_format = chkpt::CheckpointFormat::V2;
  bool ckpt_compress = true;

  /// Restore each experiment from a shared parsed baseline, copying back
  /// only the pages the worker's previous experiment dirtied, instead of
  /// re-deserializing the whole blob per experiment. Bit-identical to the
  /// full restore; off only for A/B measurement (bench_fig9_checkpoint).
  bool shared_baseline = true;

  /// Root seed of the campaign. Each experiment derives its own RNG stream
  /// as splitmix64(campaign_seed ^ index) (see experiment_seed()), so any
  /// single experiment can be regenerated in isolation from its telemetry
  /// record without replaying the campaign's draw order.
  std::uint64_t campaign_seed = 0;

  /// Host wall-clock deadline per experiment attempt, seconds (0 = none).
  /// Cuts off experiments the tick watchdog cannot: a generous simulated-
  /// time budget on a wedged or contended host. Deadline exits classify as
  /// Outcome::Timeout and never stall the remaining workers.
  double deadline_seconds = 0.0;

  /// Bounded retries for experiments that die on simulator-internal errors
  /// (exceptions from the simulator, e.g. a damaged checkpoint) or on the
  /// wall-clock deadline — failures of the substrate, not effects of the
  /// injected fault. Each retry multiplies the deadline by retry_backoff.
  unsigned max_retries = 2;
  double retry_backoff = 2.0;

  /// Telemetry sink; not owned, may be null. See observer.hpp for the
  /// thread-safety contract.
  CampaignObserver* observer = nullptr;

  /// Syscall-fault plans armed for every experiment (on top of the per-
  /// experiment register/PC fault). Single-run and A/B configurations.
  std::vector<fi::SyscallFaultPlan> syscall_plans;

  /// Syscall-fault campaign mode: each experiment additionally arms
  /// seeded_syscall_plan(campaign_seed, index) — synthesized from the same
  /// per-experiment seed as the register fault, so a --replay regenerates
  /// the exact plan from (campaign_seed, index) alone.
  bool random_syscall_faults = false;

  /// Override the guest file-store capacity in bytes (0 = simulator
  /// default). Shrinking the slack below an app's output size is how the
  /// taxonomy benches make torn writes displace later ones into ENOSPC —
  /// the cascade scenario. Applied at calibration too, so the checkpoint
  /// (which serializes the OS layer, capacity included) stays consistent.
  std::uint64_t sys_file_capacity = 0;
};

/// An app plus everything calibration learned about its fault-free run.
struct CalibratedApp {
  apps::App app;
  chkpt::Checkpoint checkpoint;          // taken at fi_read_init_all()
  std::uint64_t golden_ticks = 0;        // full run, campaign CPU model
  std::uint64_t golden_committed = 0;
  std::uint64_t kernel_fetches = 0;      // fetches inside the FI window
  std::uint64_t ticks_to_checkpoint = 0; // pre-checkpoint (init+boot) ticks
  double calib_wall_seconds = 0.0;       // host wall time of the golden run
};

/// Run the app fault-free on the campaign CPU model, capture the checkpoint
/// at fi_read_init_all(), verify the output matches the golden model
/// (paper Sec. IV-A validation), and measure the run costs.
/// Throws std::runtime_error if the guest output mismatches the golden.
CalibratedApp calibrate(apps::App app, const CampaignConfig& cfg);

/// Uniform single-event-upset fault at the given location: uniform Time over
/// the FI window, uniform bit, uniform register (Sec. IV-B-1 methodology).
/// Register draws exclude R31/F31 — the architecturally-zero registers —
/// since a flip there is a guaranteed no-op that would silently inflate the
/// Masked (non-propagated) fraction vs. the paper's Fig. 5 methodology.
fi::Fault random_fault(util::Rng& rng, fi::FaultLocation location,
                       std::uint64_t kernel_fetches);

/// Uniform over the SEU locations as well (Skip/Opcode excluded: attacks
/// are sampled explicitly via random_model_fault, never by SEU campaigns).
fi::Fault random_fault_any(util::Rng& rng, std::uint64_t kernel_fetches);

/// A fault drawn from one of the extended model families: transient SEU
/// (= random_fault_any), permanent stuck-at bit, duty-cycled intermittent,
/// contiguous multi-bit burst, or an attack (instruction skip / opcode
/// corruption). Used by model-taxonomy campaigns and benches.
fi::Fault random_model_fault(util::Rng& rng, fi::FaultModelKind kind,
                             std::uint64_t kernel_fetches);

/// The RNG seed of experiment `index` in a campaign rooted at
/// `campaign_seed`: splitmix64(campaign_seed ^ index). Deterministic and
/// order-independent, so one experiment is replayable from its record alone.
[[nodiscard]] constexpr std::uint64_t experiment_seed(std::uint64_t campaign_seed,
                                                      std::uint64_t index) noexcept {
  std::uint64_t state = campaign_seed ^ index;
  return util::splitmix64(state);
}

/// The fault experiment `index` would draw in a seeded campaign (uniform
/// over all locations). Regenerates bit-for-bit from (campaign_seed, index).
fi::Fault seeded_fault_any(std::uint64_t campaign_seed, std::uint64_t index,
                           std::uint64_t kernel_fetches);

/// Random syscall-fault plan: a uniformly drawn injectable syscall, a single
/// firing call index, and one of the four behaviors (errno — biased toward
/// errnos realistic for the target —, latency, partial, corrupt).
fi::SyscallFaultPlan random_syscall_plan(util::Rng& rng);

/// The syscall plan experiment `index` draws when cfg.random_syscall_faults
/// is set; regenerates bit-for-bit from (campaign_seed, index).
fi::SyscallFaultPlan seeded_syscall_plan(std::uint64_t campaign_seed,
                                         std::uint64_t index);

/// The full plan set experiment `index` runs under `cfg`: the fixed
/// cfg.syscall_plans plus, in random_syscall_faults mode, the index's seeded
/// draw. The one source of truth shared by local workers, the NoW dispatch
/// paths and --replay, so every path arms identical plans for an index.
std::vector<fi::SyscallFaultPlan> plans_for_experiment(const CampaignConfig& cfg,
                                                       std::uint64_t index);

/// The first `n` seeded faults of a campaign, i.e. seeded_fault_any(seed, i)
/// for i in [0, n).
std::vector<fi::Fault> seeded_fault_set(std::uint64_t campaign_seed, std::size_t n,
                                        std::uint64_t kernel_fetches);

struct ExperimentResult {
  Classification classification;
  sim::ExitReason exit_reason = sim::ExitReason::AllThreadsExited;
  cpu::TrapKind trap = cpu::TrapKind::None;
  fi::Fault fault;
  bool fault_applied = false;
  double time_fraction = 0.0;   // fault time / kernel length (Fig. 6 x-axis)
  std::uint64_t sim_ticks = 0;  // simulated ticks consumed by the experiment
  double wall_seconds = 0.0;    // host wall time (all attempts)
  unsigned retries = 0;         // attempts beyond the first (see max_retries)
  bool fastmode = true;         // golden-path tier armed for this run (replay
                                // must force the identical engagement decision)
  std::string sim_error;        // simulator-internal failure, retries exhausted

  // Checkpoint-restore telemetry (0/absent when the experiment ran from
  // reset without a checkpoint).
  std::uint8_t ckpt_version = 0;     // CheckpointFormat that seeded the run
  std::uint64_t restore_pages = 0;   // pages materialized by the restore
  std::uint64_t restore_bytes = 0;   // bytes copied/decoded by the restore

  // Syscall-fault telemetry (empty/None when no plans were armed).
  std::vector<fi::SyscallFaultPlan> syscall_plans;  // plans armed for the run
  SyscallClassification syscall_class;
  std::uint64_t syscalls_injected = 0;  // calls that saw an injection fire
};

/// Run one fault-injection experiment (single attempt, no retry; simulator-
/// internal errors propagate as exceptions). `syscall_plans` overrides
/// cfg.syscall_plans for this run when non-null (campaign per-experiment
/// plan synthesis); null means "use cfg.syscall_plans".
ExperimentResult run_experiment(const CalibratedApp& ca, const fi::Fault& fault,
                                const CampaignConfig& cfg,
                                const std::vector<fi::SyscallFaultPlan>* syscall_plans = nullptr);

/// Run one experiment with the campaign robustness policy: up to
/// cfg.max_retries re-runs on simulator-internal exceptions or wall-clock
/// deadline exits, backing the deadline off by cfg.retry_backoff each time.
/// Never throws on simulator errors: after the last retry the result carries
/// the message in sim_error and classifies as Crashed.
ExperimentResult run_experiment_with_retry(const CalibratedApp& ca, const fi::Fault& fault,
                                           const CampaignConfig& cfg,
                                           const std::vector<fi::SyscallFaultPlan>* syscall_plans = nullptr);

/// A campaign worker's persistent experiment context for the shared-baseline
/// fast restore path (tentpole of the v2 checkpoint format).
///
/// The worker keeps one Simulation alive across experiments. The first run
/// restores the full baseline image; every later run copies back only the
/// pages the previous experiment dirtied (PhysMem's dirty bitmap) plus the
/// small machine-state stream — equivalent bit-for-bit to a full restore,
/// at a fraction of the cost. On a simulator-internal error the cached
/// Simulation is discarded so the retry starts from a pristine full restore.
class ExperimentWorker {
 public:
  ExperimentWorker(const CalibratedApp& ca, const chkpt::CheckpointImage& image,
                   const CampaignConfig& cfg);
  ~ExperimentWorker();

  ExperimentWorker(const ExperimentWorker&) = delete;
  ExperimentWorker& operator=(const ExperimentWorker&) = delete;

  /// Single attempt; simulator-internal errors propagate as exceptions
  /// (the cached Simulation is invalidated first).
  ExperimentResult run(const fi::Fault& fault,
                       const std::vector<fi::SyscallFaultPlan>* syscall_plans = nullptr);

  /// Retry policy of run_experiment_with_retry on top of run().
  ExperimentResult run_with_retry(const fi::Fault& fault,
                                  const std::vector<fi::SyscallFaultPlan>* syscall_plans = nullptr);

 private:
  ExperimentResult run_attempt(const fi::Fault& fault, const CampaignConfig& attempt_cfg,
                               const std::vector<fi::SyscallFaultPlan>* syscall_plans);

  const CalibratedApp& ca_;
  const chkpt::CheckpointImage& image_;
  const CampaignConfig& cfg_;
  std::unique_ptr<sim::Simulation> sim_;  // null until the first run
};

/// One completed experiment as seen by a CampaignObserver.
struct ExperimentRecord {
  std::size_t index = 0;   // position in the campaign's fault list
  unsigned worker = 0;     // worker/slot id that ran it
  std::uint64_t seed = 0;  // experiment_seed(cfg.campaign_seed, index)
  ExperimentResult result;
};

struct CampaignReport {
  std::array<std::size_t, apps::kNumOutcomes> counts{};  // by Outcome
  std::vector<ExperimentResult> results;
  double wall_seconds = 0.0;  // whole campaign, host wall time

  // Syscall-fault taxonomy tallies, indexed by SyscallOutcome. Runs where no
  // injection fired (plans missed, or none were armed) land in [None].
  std::array<std::size_t, kNumSyscallOutcomes> syscall_counts{};
  unsigned max_cascade = 0;  // longest observed failure chain

  [[nodiscard]] std::size_t total() const noexcept;
  [[nodiscard]] double fraction(apps::Outcome o) const noexcept;
};

/// Run a whole campaign (one experiment per fault) with cfg.workers-way
/// parallelism on this host.
CampaignReport run_campaign(const CalibratedApp& ca, const std::vector<fi::Fault>& faults,
                            const CampaignConfig& cfg);

}  // namespace gemfi::campaign
