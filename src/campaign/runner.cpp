#include "campaign/runner.hpp"

#include <atomic>
#include <cassert>
#include <chrono>
#include <memory>
#include <optional>
#include <stdexcept>
#include <thread>

#include "campaign/observer.hpp"
#include "isa/registers.hpp"
#include "util/log.hpp"

namespace gemfi::campaign {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

sim::SimConfig make_sim_config(const CampaignConfig& cfg) {
  sim::SimConfig scfg;
  scfg.cpu = cfg.cpu;
  scfg.fi_enabled = true;
  scfg.switch_to_atomic_after_fault = cfg.switch_to_atomic_after_fault;
  scfg.predecode = cfg.predecode;
  scfg.fastpath = cfg.fastpath;
  scfg.fastmode = cfg.fastmode;
  if (cfg.sys_file_capacity != 0) scfg.sys_file_capacity = cfg.sys_file_capacity;
  return scfg;
}

/// Everything after the simulation is positioned (fresh or restored): arm
/// the fault and the syscall plans, run under the watchdog, classify.
/// Shared by the per-experiment and the persistent-worker paths. Does not
/// fill wall_seconds.
ExperimentResult execute_faulted_run(sim::Simulation& s, const CalibratedApp& ca,
                                     const fi::Fault& fault, const CampaignConfig& cfg,
                                     std::uint64_t start_ticks,
                                     const std::vector<fi::SyscallFaultPlan>& plans) {
  ExperimentResult er;
  er.fault = fault;
  er.fastmode = cfg.fastmode;
  er.time_fraction = ca.kernel_fetches == 0
                         ? 0.0
                         : double(fault.time) / double(ca.kernel_fetches);
  s.fault_manager().load_faults({fault});
  s.syscall_injector().clear();
  for (const fi::SyscallFaultPlan& p : plans) s.syscall_injector().add_plan(p);

  const std::uint64_t watchdog =
      cfg.watchdog_mult * ca.golden_ticks + 1'000'000;
  const sim::RunResult rr = s.run(watchdog, cfg.deadline_seconds);

  er.exit_reason = rr.reason;
  er.trap = rr.trap.kind;
  er.fault_applied = s.fault_manager().any_applied();
  // A checkpoint restore resumes the tick counter at ticks_to_checkpoint, so
  // rr.ticks >= start_ticks is an invariant; guard it anyway so a violation
  // surfaces as a zero instead of an underflowed ~1.8e19 that would wreck
  // every mean-duration statistic downstream.
  assert(rr.ticks >= start_ticks && "experiment ended before its checkpoint tick");
  er.sim_ticks = rr.ticks >= start_ticks ? rr.ticks - start_ticks : 0;
  er.classification = classify(ca.app, rr, s.fault_manager(), s.output(0));

  if (!plans.empty()) {
    er.syscall_plans = plans;
    er.syscalls_injected = s.syscalls().injected_calls();
    // "The guest did not recover": it never terminated on its own, a trap
    // killed it, or a thread bailed out through its error-exit path.
    bool unhandled = rr.reason != sim::ExitReason::AllThreadsExited;
    const os::Scheduler& sched = s.scheduler();
    for (std::uint64_t tid = 0; tid < sched.thread_count(); ++tid)
      if (sched.thread(tid).exit_code != 0) unhandled = true;
    er.syscall_class = classify_syscalls(s.syscalls().full_trace(), unhandled);
  }
  return er;
}

/// The campaign robustness policy shared by run_experiment_with_retry and
/// ExperimentWorker::run_with_retry: retry deadline exits and simulator-
/// internal exceptions with a backed-off deadline; after the last retry,
/// report the error as a Crashed record instead of throwing.
template <typename Attempt, typename OnError>
ExperimentResult retry_policy(const CalibratedApp& ca, const fi::Fault& fault,
                              const CampaignConfig& cfg, Attempt attempt_fn,
                              OnError on_error) {
  const auto t0 = Clock::now();
  CampaignConfig attempt_cfg = cfg;
  for (unsigned attempt = 0;; ++attempt) {
    const bool last = attempt >= cfg.max_retries;
    try {
      ExperimentResult er = attempt_fn(attempt_cfg);
      // A deadline exit may be host contention rather than an effect of the
      // injected fault: retry with a longer leash. Tick-watchdog exits are
      // deterministic in simulated time and are never retried.
      if (er.exit_reason == sim::ExitReason::Deadline && !last) {
        attempt_cfg.deadline_seconds *= cfg.retry_backoff;
        continue;
      }
      er.retries = attempt;
      er.wall_seconds = seconds_since(t0);
      return er;
    } catch (const std::exception& e) {
      on_error();
      if (!last) {
        if (attempt_cfg.deadline_seconds > 0.0)
          attempt_cfg.deadline_seconds *= cfg.retry_backoff;
        continue;
      }
      // Simulator-internal failure survived every retry: report it as a
      // crash carrying the message, so the campaign completes and the
      // record points at the substrate rather than the injected fault.
      ExperimentResult er;
      er.fault = fault;
      er.retries = attempt;
      er.sim_error = e.what();
      er.exit_reason = sim::ExitReason::Crashed;
      er.classification.outcome = apps::Outcome::Crashed;
      er.time_fraction = ca.kernel_fetches == 0
                             ? 0.0
                             : double(fault.time) / double(ca.kernel_fetches);
      er.wall_seconds = seconds_since(t0);
      return er;
    }
  }
}

}  // namespace

CalibratedApp calibrate(apps::App app, const CampaignConfig& cfg) {
  CalibratedApp ca;
  const auto t0 = Clock::now();

  sim::Simulation s(make_sim_config(cfg), app.program);
  s.spawn_main_thread();
  chkpt::Checkpoint ckpt;
  std::uint64_t ticks_at_ckpt = 0;
  s.set_checkpoint_handler([&](sim::Simulation& sim) {
    ckpt = chkpt::Checkpoint::capture(sim, {cfg.ckpt_format, cfg.ckpt_compress});
    ticks_at_ckpt = sim.now();
  });

  const sim::RunResult rr = s.run();
  if (rr.reason != sim::ExitReason::AllThreadsExited)
    throw std::runtime_error("calibration run of '" + app.name +
                             "' did not terminate cleanly: " +
                             sim::exit_reason_name(rr.reason));
  if (s.output(0) != app.golden_output)
    throw std::runtime_error("guest output of '" + app.name +
                             "' diverges from its golden model");
  if (ckpt.empty())
    throw std::runtime_error("app '" + app.name + "' never called fi_read_init_all()");

  app.golden_insts = rr.committed;
  app.golden_kernel_insts = s.fault_manager().last_deactivated_fetched();
  app.golden_ticks = rr.ticks;

  ca.golden_ticks = rr.ticks;
  ca.golden_committed = rr.committed;
  ca.kernel_fetches = s.fault_manager().last_deactivated_fetched();
  ca.ticks_to_checkpoint = ticks_at_ckpt;
  ca.checkpoint = std::move(ckpt);
  ca.calib_wall_seconds = seconds_since(t0);
  ca.app = std::move(app);
  if (ca.kernel_fetches == 0)
    throw std::runtime_error("app '" + ca.app.name + "' has an empty FI window");
  return ca;
}

fi::Fault random_fault(util::Rng& rng, fi::FaultLocation location,
                       std::uint64_t kernel_fetches) {
  fi::Fault f;
  f.location = location;
  f.thread_id = 0;
  f.core = 0;
  f.occurrences = 1;
  f.time_kind = fi::FaultTimeKind::Instruction;
  f.time = 1 + rng.below(kernel_fetches);
  f.behavior = fi::FaultBehavior::Flip;
  switch (location) {
    case fi::FaultLocation::IntReg:
    case fi::FaultLocation::FpReg:
      // R31/F31 are architecturally zero: a flip there can never propagate,
      // so drawing it would inflate the Masked fraction. Draw from the 31
      // writable registers instead.
      static_assert(isa::kZeroReg == 31 && isa::kFpZeroReg == 31);
      f.reg = unsigned(rng.below(isa::kZeroReg));
      f.operand = rng.below(64);
      break;
    case fi::FaultLocation::Fetch:
      f.operand = rng.below(32);
      break;
    case fi::FaultLocation::Decode:
      f.decode_field = static_cast<fi::DecodeField>(rng.below(3));
      f.operand = rng.below(5);
      break;
    case fi::FaultLocation::Execute:
    case fi::FaultLocation::LoadStore:
    case fi::FaultLocation::PC:
      f.operand = rng.below(64);
      break;
    case fi::FaultLocation::Skip:
      f.operand = 0;
      break;
    case fi::FaultLocation::Opcode:
      f.operand = rng.below(6);
      break;
  }
  return f;
}

fi::Fault random_fault_any(util::Rng& rng, std::uint64_t kernel_fetches) {
  // Uniform over the SEU-prone structures only; Skip/Opcode model deliberate
  // attacks and would skew the paper-style outcome distributions.
  const auto loc = static_cast<fi::FaultLocation>(rng.below(fi::kNumSeuFaultLocations));
  return random_fault(rng, loc, kernel_fetches);
}

fi::Fault random_model_fault(util::Rng& rng, fi::FaultModelKind kind,
                             std::uint64_t kernel_fetches) {
  if (kind == fi::FaultModelKind::Attack) {
    const auto loc =
        rng.chance(0.5) ? fi::FaultLocation::Skip : fi::FaultLocation::Opcode;
    fi::Fault f = random_fault(rng, loc, kernel_fetches);
    if (loc == fi::FaultLocation::Skip) f.occurrences = 1 + rng.below(4);
    return f;
  }

  fi::Fault f = random_fault_any(rng, kernel_fetches);
  const unsigned width = fi::fault_target_width(f.location);
  switch (kind) {
    case fi::FaultModelKind::Transient:
      break;  // random_fault_any already is the paper's SEU
    case fi::FaultModelKind::StuckAt: {
      const std::uint64_t mask = 1ull << (f.operand % 64);
      f.behavior =
          rng.chance(0.5) ? fi::FaultBehavior::StuckOne : fi::FaultBehavior::StuckZero;
      f.operand = mask;
      f.occurrences = fi::kPermanent;
      break;
    }
    case fi::FaultModelKind::Intermittent:
      f.occurrences = fi::kPermanent;
      f.duty_period = 8ull << rng.below(6);  // period 8 .. 256 instructions
      f.duty_active = 1 + rng.below(f.duty_period / 2);
      break;
    case fi::FaultModelKind::Burst: {
      const unsigned len = 2 + unsigned(rng.below(3));  // 2..4 adjacent bits
      const unsigned start = unsigned(rng.below(width >= len ? width - len + 1 : 1));
      f.behavior = fi::FaultBehavior::Burst;
      f.operand = fi::Fault::burst_operand(start, len);
      break;
    }
    case fi::FaultModelKind::Attack:
      break;  // handled above
  }
  return f;
}

fi::SyscallFaultPlan random_syscall_plan(util::Rng& rng) {
  fi::SyscallFaultPlan p;
  // Uniform over the eight injectable syscalls (Version is deliberately
  // excluded: it is the ABI handshake every app checks before any error
  // handling exists, so failing it only measures the boot path).
  p.target = static_cast<os::Sysno>(1 + rng.below(8));
  // A single firing call index: syscall counts per (thread, sysno) are small
  // (a handful of allocs, tens of writes), so a 1..24 window covers the
  // interesting lifetimes without drawing mostly-missed indices.
  p.idx_lo = p.idx_hi = 1 + rng.below(24);
  switch (rng.below(4)) {
    case 0: {
      // Biased 80/20 toward errnos the target could really return, so most
      // experiments exercise reachable handler paths while a measured
      // minority probes the unrealistic-errno flag.
      static constexpr std::uint16_t kErrnos[] = {
          os::kENOENT, os::kEIO,    os::kEBADF,  os::kEAGAIN,
          os::kENOMEM, os::kEFAULT, os::kEEXIST, os::kEINVAL,
          os::kEMFILE, os::kENOSPC, os::kENOSYS, os::kEMSGSIZE};
      constexpr std::size_t kNumErrnos = sizeof(kErrnos) / sizeof(kErrnos[0]);
      std::uint16_t err = kErrnos[rng.below(kNumErrnos)];
      if (rng.chance(0.8)) {
        while (!os::errno_realistic(p.target, err))
          err = kErrnos[rng.below(kNumErrnos)];
      }
      p.has_errno = true;
      p.errno_code = err;
      break;
    }
    case 1:
      p.has_latency = true;
      p.latency_ticks = 1 + rng.below(5000);
      break;
    case 2:
      p.has_partial = true;
      p.partial_ppm = 125'000 * (1 + rng.below(7));  // 1/8 .. 7/8
      break;
    default:
      p.has_corrupt = true;
      p.corrupt_bits = std::uint8_t(1 + rng.below(4));
      p.corrupt_seed = rng.next();
      break;
  }
  return p;
}

fi::SyscallFaultPlan seeded_syscall_plan(std::uint64_t campaign_seed,
                                         std::uint64_t index) {
  // Independent of the architectural-fault draw: a distinct stream derived
  // from the same per-experiment seed, so arming syscall plans never shifts
  // which register fault an index maps to (and vice versa).
  util::Rng rng(experiment_seed(campaign_seed, index) ^ 0x5ca11fa017ull);
  return random_syscall_plan(rng);
}

std::vector<fi::SyscallFaultPlan> plans_for_experiment(const CampaignConfig& cfg,
                                                       std::uint64_t index) {
  std::vector<fi::SyscallFaultPlan> plans = cfg.syscall_plans;
  if (cfg.random_syscall_faults)
    plans.push_back(seeded_syscall_plan(cfg.campaign_seed, index));
  return plans;
}

fi::Fault seeded_fault_any(std::uint64_t campaign_seed, std::uint64_t index,
                           std::uint64_t kernel_fetches) {
  util::Rng rng(experiment_seed(campaign_seed, index));
  return random_fault_any(rng, kernel_fetches);
}

std::vector<fi::Fault> seeded_fault_set(std::uint64_t campaign_seed, std::size_t n,
                                        std::uint64_t kernel_fetches) {
  std::vector<fi::Fault> faults;
  faults.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    faults.push_back(seeded_fault_any(campaign_seed, i, kernel_fetches));
  return faults;
}

ExperimentResult run_experiment(const CalibratedApp& ca, const fi::Fault& fault,
                                const CampaignConfig& cfg,
                                const std::vector<fi::SyscallFaultPlan>* syscall_plans) {
  const auto t0 = Clock::now();
  sim::Simulation s(make_sim_config(cfg), ca.app.program);
  s.spawn_main_thread();
  const std::uint64_t start_ticks =
      cfg.use_checkpoint ? ca.ticks_to_checkpoint : 0;
  if (cfg.use_checkpoint) ca.checkpoint.restore_into(s);

  ExperimentResult er =
      execute_faulted_run(s, ca, fault, cfg, start_ticks,
                          syscall_plans ? *syscall_plans : cfg.syscall_plans);
  if (cfg.use_checkpoint) {
    er.ckpt_version = std::uint8_t(ca.checkpoint.format());
    er.restore_pages = s.memsys().phys().page_count();
    er.restore_bytes = ca.checkpoint.size_bytes();
  }
  er.wall_seconds = seconds_since(t0);
  return er;
}

ExperimentResult run_experiment_with_retry(const CalibratedApp& ca, const fi::Fault& fault,
                                           const CampaignConfig& cfg,
                                           const std::vector<fi::SyscallFaultPlan>* syscall_plans) {
  return retry_policy(
      ca, fault, cfg,
      [&](const CampaignConfig& attempt_cfg) {
        return run_experiment(ca, fault, attempt_cfg, syscall_plans);
      },
      [] {});
}

ExperimentWorker::ExperimentWorker(const CalibratedApp& ca,
                                   const chkpt::CheckpointImage& image,
                                   const CampaignConfig& cfg)
    : ca_(ca), image_(image), cfg_(cfg) {}

ExperimentWorker::~ExperimentWorker() = default;

ExperimentResult ExperimentWorker::run_attempt(const fi::Fault& fault,
                                               const CampaignConfig& attempt_cfg,
                                               const std::vector<fi::SyscallFaultPlan>* syscall_plans) {
  std::uint64_t pages = 0;
  if (!sim_) {
    sim_ = std::make_unique<sim::Simulation>(make_sim_config(cfg_), ca_.app.program);
    sim_->spawn_main_thread();
    pages = image_.restore_into(*sim_);
  } else {
    pages = image_.restore_dirty_into(*sim_);
  }

  ExperimentResult er =
      execute_faulted_run(*sim_, ca_, fault, attempt_cfg, ca_.ticks_to_checkpoint,
                          syscall_plans ? *syscall_plans : cfg_.syscall_plans);
  er.ckpt_version = std::uint8_t(image_.stats().format);
  er.restore_pages = pages;
  er.restore_bytes = pages * mem::PhysMem::kPageBytes;
  return er;
}

ExperimentResult ExperimentWorker::run(const fi::Fault& fault,
                                       const std::vector<fi::SyscallFaultPlan>* syscall_plans) {
  const auto t0 = Clock::now();
  try {
    ExperimentResult er = run_attempt(fault, cfg_, syscall_plans);
    er.wall_seconds = seconds_since(t0);
    return er;
  } catch (...) {
    // The cached Simulation may be mid-deserialize or otherwise torn;
    // discard it so the next run starts from a pristine full restore.
    sim_.reset();
    throw;
  }
}

ExperimentResult ExperimentWorker::run_with_retry(const fi::Fault& fault,
                                                  const std::vector<fi::SyscallFaultPlan>* syscall_plans) {
  return retry_policy(
      ca_, fault, cfg_,
      [&](const CampaignConfig& attempt_cfg) {
        return run_attempt(fault, attempt_cfg, syscall_plans);
      },
      [&] { sim_.reset(); });
}

std::size_t CampaignReport::total() const noexcept {
  std::size_t n = 0;
  for (const std::size_t c : counts) n += c;
  return n;
}

double CampaignReport::fraction(apps::Outcome o) const noexcept {
  const std::size_t n = total();
  return n == 0 ? 0.0 : double(counts[std::size_t(o)]) / double(n);
}

CampaignReport run_campaign(const CalibratedApp& ca, const std::vector<fi::Fault>& faults,
                            const CampaignConfig& cfg) {
  const auto t0 = Clock::now();
  CampaignReport report;
  report.results.resize(faults.size());

  CampaignObserver* const obs = cfg.observer;
  if (obs) obs->on_campaign_begin(faults.size());

  // Shared-baseline fast path: parse the checkpoint once up front; each
  // worker keeps one Simulation alive and restores by dirty-page copy.
  // A checkpoint that fails to parse is NOT fatal to the campaign: fall back
  // to the per-experiment restore path, which reports the damage as a
  // bounded per-experiment substrate failure (Crashed + sim_error).
  std::optional<chkpt::CheckpointImage> baseline;
  if (cfg.use_checkpoint && cfg.shared_baseline && !ca.checkpoint.empty()) {
    try {
      baseline.emplace(chkpt::CheckpointImage::parse(ca.checkpoint));
    } catch (const std::exception&) {
      baseline.reset();
    }
  }

  const unsigned workers = cfg.workers == 0 ? 1 : cfg.workers;
  std::atomic<std::size_t> next{0};
  const auto worker = [&](unsigned worker_id) {
    std::optional<ExperimentWorker> ew;
    if (baseline) ew.emplace(ca, *baseline, cfg);
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= faults.size()) return;
      // Per-experiment syscall plan synthesis: every fixed plan plus one
      // seeded draw, regenerable from (campaign_seed, i) alone for --replay.
      const std::vector<fi::SyscallFaultPlan> plans = plans_for_experiment(cfg, i);
      ExperimentResult er = ew ? ew->run_with_retry(faults[i], &plans)
                               : run_experiment_with_retry(ca, faults[i], cfg, &plans);
      if (obs)
        obs->on_experiment(
            {i, worker_id, experiment_seed(cfg.campaign_seed, i), er});
      report.results[i] = std::move(er);
    }
  };

  if (workers == 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned i = 0; i < workers; ++i) pool.emplace_back(worker, i);
    for (auto& t : pool) t.join();
  }

  for (const ExperimentResult& er : report.results) {
    ++report.counts[std::size_t(er.classification.outcome)];
    ++report.syscall_counts[std::size_t(er.syscall_class.outcome)];
    if (er.syscall_class.cascade_len > report.max_cascade)
      report.max_cascade = er.syscall_class.cascade_len;
  }
  report.wall_seconds = seconds_since(t0);
  if (obs) obs->on_campaign_end(report);
  return report;
}

}  // namespace gemfi::campaign
