// Outcome classification (paper Sec. IV-B-1).
//
// Each experiment lands in exactly one of:
//   Crashed          — terminated by a guest trap;
//   Timeout          — cut off by the tick watchdog or the wall-clock
//                      deadline (fault-induced livelock or wedged host);
//   NonPropagated    — the fault never manifested as an error (dead or
//                      overwritten register, squashed instruction, corruption
//                      that did not change the value, or a trigger time the
//                      program never reached);
//   StrictlyCorrect  — fault propagated but the output is bit-wise identical
//                      to the error-free execution;
//   Correct          — output within the application's acceptable margin;
//   SDC              — terminated normally with an unacceptable output;
//   AttackEffective  — a deliberate fault (SkipInjectedFault /
//                      OpcodeInjectedFault) was applied and the program
//                      terminated normally with an altered output — the
//                      success criterion of fault-attack experiments.
#pragma once

#include "apps/app.hpp"
#include "fi/fault_manager.hpp"
#include "os/syscall.hpp"
#include "sim/simulation.hpp"

namespace gemfi::campaign {

struct Classification {
  apps::Outcome outcome = apps::Outcome::SDC;
  double metric = 0.0;  // app-specific quality figure (PSNR dB, ratio, ...)
};

Classification classify(const apps::App& app, const sim::RunResult& rr,
                        const fi::FaultManager& fm, const std::string& output);

// --- syscall-fault outcome taxonomy (failure-propagation analysis) ---
//
// Orthogonal to the paper's output-based classes above: it reports how far
// an injected syscall failure travelled through the guest's error-handling
// before the run ended, measured on the per-thread syscall/errno trace the
// OS layer records.
//   None             — no injection fired (golden runs, missed windows);
//   MaskedByHandler  — an injection fired and no later syscall failed: the
//                      guest's recovery path (retry, fallback) absorbed it;
//   Cascade          — N >= 1 subsequent *non-injected* syscalls failed
//                      after the first injected call on the same thread:
//                      the failure propagated through guest state (e.g. torn
//                      log bytes turning later writes into ENOSPC);
//   UnhandledError   — the run crashed or a thread exited nonzero after an
//                      injection: the guest gave up (or died) instead of
//                      recovering.
enum class SyscallOutcome : std::uint8_t {
  None,
  MaskedByHandler,
  Cascade,
  UnhandledError,
};
inline constexpr unsigned kNumSyscallOutcomes = 4;

const char* syscall_outcome_name(SyscallOutcome o) noexcept;

struct SyscallClassification {
  SyscallOutcome outcome = SyscallOutcome::None;
  unsigned cascade_len = 0;  // N: failed non-injected calls after injection
  bool injected = false;     // any injection fired
  // Error-realism flag: an injected errno the real table could never return
  // through that syscall (e.g. ENOSPC from sys_recv) — the experiment
  // exercised a path no real execution reaches, so treat results with care.
  bool unrealistic = false;
};

/// Classify the failure propagation of one run from the flat syscall trace
/// (thread-major, as SyscallLayer::full_trace() returns it).
/// `unhandled` is the caller's verdict that the guest did not recover: it
/// crashed, timed out after the injection, or a thread exited nonzero.
SyscallClassification classify_syscalls(
    const std::vector<std::pair<std::uint64_t, os::SyscallTraceEntry>>& trace,
    bool unhandled);

}  // namespace gemfi::campaign
