// Outcome classification (paper Sec. IV-B-1).
//
// Each experiment lands in exactly one of:
//   Crashed          — terminated by a guest trap;
//   Timeout          — cut off by the tick watchdog or the wall-clock
//                      deadline (fault-induced livelock or wedged host);
//   NonPropagated    — the fault never manifested as an error (dead or
//                      overwritten register, squashed instruction, corruption
//                      that did not change the value, or a trigger time the
//                      program never reached);
//   StrictlyCorrect  — fault propagated but the output is bit-wise identical
//                      to the error-free execution;
//   Correct          — output within the application's acceptable margin;
//   SDC              — terminated normally with an unacceptable output;
//   AttackEffective  — a deliberate fault (SkipInjectedFault /
//                      OpcodeInjectedFault) was applied and the program
//                      terminated normally with an altered output — the
//                      success criterion of fault-attack experiments.
#pragma once

#include "apps/app.hpp"
#include "fi/fault_manager.hpp"
#include "sim/simulation.hpp"

namespace gemfi::campaign {

struct Classification {
  apps::Outcome outcome = apps::Outcome::SDC;
  double metric = 0.0;  // app-specific quality figure (PSNR dB, ratio, ...)
};

Classification classify(const apps::App& app, const sim::RunResult& rr,
                        const fi::FaultManager& fm, const std::string& output);

}  // namespace gemfi::campaign
