// Network-of-Workstations campaign execution (paper Sec. III-E / Fig. 8).
//
// The paper distributes a checkpointed campaign over 27 quad-core
// workstations sharing an NFS volume: each workstation copies the checkpoint
// locally, then its 4 slots repeatedly pull un-run experiments from the
// share and push results back. NowRunner reproduces exactly that protocol
// with an in-process "network share" (mutex-protected work queue + result
// store) and one thread per (workstation, slot).
//
// A single host cannot physically provide 27x4 cores, so the runner reports
// two numbers:
//   * measured wall time, with the slot threads actually running (capped by
//     host parallelism), and
//   * the modeled NoW makespan: greedy list-scheduling of the measured
//     per-experiment durations onto workstations*slots slots plus the
//     checkpoint copy time — what the same campaign would take on the
//     paper's cluster.
#pragma once

#include "campaign/runner.hpp"

namespace gemfi::campaign {

struct NowConfig {
  unsigned workstations = 27;
  unsigned slots_per_workstation = 4;  // simultaneous experiments per host
  /// Cap on real threads (0 = hardware_concurrency). The protocol still
  /// enumerates all workstation/slot identities.
  unsigned max_real_threads = 0;
  /// Modeled time to copy the checkpoint to a workstation's local disk
  /// (step 3 of the protocol), in seconds per MiB.
  double copy_seconds_per_mib = 0.05;
};

struct NowReport {
  CampaignReport campaign;       // merged results (same format as local runs)
  double measured_wall_seconds = 0.0;
  double modeled_makespan_seconds = 0.0;  // on the full W x S cluster
  unsigned real_threads_used = 0;
};

NowReport run_campaign_now(const CalibratedApp& ca, const std::vector<fi::Fault>& faults,
                           const CampaignConfig& cfg, const NowConfig& now);

}  // namespace gemfi::campaign
