#include "campaign/now_runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>

#include "campaign/observer.hpp"

namespace gemfi::campaign {

namespace {

using Clock = std::chrono::steady_clock;

/// The "network share": fault configs in, results out (steps 1, 4, 5).
class NetworkShare {
 public:
  explicit NetworkShare(std::size_t n) : results_(n) {}

  /// Step 4: a workstation selects one of the remaining experiments.
  std::optional<std::size_t> pull() {
    std::lock_guard lock(mutex_);
    if (next_ >= results_.size()) return std::nullopt;
    return next_++;
  }

  /// Step 5: results move back to the share.
  void push(std::size_t index, ExperimentResult result) {
    std::lock_guard lock(mutex_);
    results_[index] = std::move(result);
  }

  std::vector<ExperimentResult> take_results() { return std::move(results_); }

 private:
  std::mutex mutex_;
  std::size_t next_ = 0;
  std::vector<ExperimentResult> results_;
};

}  // namespace

NowReport run_campaign_now(const CalibratedApp& ca, const std::vector<fi::Fault>& faults,
                           const CampaignConfig& cfg, const NowConfig& now) {
  NowReport report;
  const auto t0 = Clock::now();

  NetworkShare share(faults.size());
  CampaignObserver* const obs = cfg.observer;
  if (obs) obs->on_campaign_begin(faults.size());

  const unsigned total_slots = now.workstations * now.slots_per_workstation;
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const unsigned cap = now.max_real_threads == 0 ? hw : now.max_real_threads;
  const unsigned real_threads = std::min(total_slots, cap);
  report.real_threads_used = real_threads;

  // Step 3: each workstation gets a local copy of the checkpoint. We copy
  // the blob per *workstation identity* so the data movement is real. The
  // once-flags are per-campaign state: a function-local static mutex here
  // would be shared across every concurrent run_campaign_now() in the
  // process, serializing unrelated campaigns' checkpoint copies on one lock.
  const unsigned ws_count = std::min(now.workstations, real_threads);
  std::vector<std::vector<std::uint8_t>> local_copies(ws_count);
  const std::unique_ptr<std::once_flag[]> copy_once(new std::once_flag[ws_count]);

  // Shared-baseline fast path (same as run_campaign): parse the image once,
  // each slot keeps a persistent Simulation and restores by dirty-page copy.
  // As in run_campaign, a damaged checkpoint falls back to the
  // per-experiment path rather than tearing down the campaign.
  std::optional<chkpt::CheckpointImage> baseline;
  if (cfg.use_checkpoint && cfg.shared_baseline && !ca.checkpoint.empty()) {
    try {
      baseline.emplace(chkpt::CheckpointImage::parse(ca.checkpoint));
    } catch (const std::exception&) {
      baseline.reset();
    }
  }

  std::atomic<unsigned> slot_id{0};
  const auto slot_worker = [&] {
    const unsigned id = slot_id.fetch_add(1, std::memory_order_relaxed);
    const unsigned ws = id % ws_count;
    // First slot of a workstation performs the local checkpoint copy.
    std::call_once(copy_once[ws], [&] { local_copies[ws] = ca.checkpoint.bytes(); });
    std::optional<ExperimentWorker> ew;
    if (baseline) ew.emplace(ca, *baseline, cfg);
    for (;;) {
      const auto index = share.pull();
      if (!index) return;
      const std::vector<fi::SyscallFaultPlan> plans = plans_for_experiment(cfg, *index);
      ExperimentResult er = ew ? ew->run_with_retry(faults[*index], &plans)
                               : run_experiment_with_retry(ca, faults[*index], cfg, &plans);
      if (obs)
        obs->on_experiment(
            {*index, id, experiment_seed(cfg.campaign_seed, *index), er});
      share.push(*index, std::move(er));
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(real_threads);
  for (unsigned i = 0; i < real_threads; ++i) pool.emplace_back(slot_worker);
  for (auto& t : pool) t.join();

  report.campaign.results = share.take_results();
  for (const ExperimentResult& er : report.campaign.results) {
    ++report.campaign.counts[std::size_t(er.classification.outcome)];
    ++report.campaign.syscall_counts[std::size_t(er.syscall_class.outcome)];
    if (er.syscall_class.cascade_len > report.campaign.max_cascade)
      report.campaign.max_cascade = er.syscall_class.cascade_len;
  }
  report.measured_wall_seconds =
      std::chrono::duration<double>(Clock::now() - t0).count();
  report.campaign.wall_seconds = report.measured_wall_seconds;
  if (obs) obs->on_campaign_end(report.campaign);

  // Modeled makespan on the full W x S cluster: greedy longest-first list
  // scheduling of the measured experiment durations, plus the (parallel)
  // checkpoint copy to every workstation.
  std::vector<double> durations;
  durations.reserve(report.campaign.results.size());
  for (const ExperimentResult& er : report.campaign.results)
    durations.push_back(er.wall_seconds);
  std::sort(durations.rbegin(), durations.rend());
  std::priority_queue<double, std::vector<double>, std::greater<>> slots;
  for (unsigned i = 0; i < total_slots; ++i) slots.push(0.0);
  for (const double d : durations) {
    const double earliest = slots.top();
    slots.pop();
    slots.push(earliest + d);
  }
  double makespan = 0.0;
  while (!slots.empty()) {
    makespan = slots.top();
    slots.pop();
  }
  // The blob *is* the on-the-wire image (v2 stores memory sparse and
  // RLE-compressed), so the modeled copy is charged the encoded size — the
  // bytes a workstation would actually pull off the share.
  const double copy_time =
      double(ca.checkpoint.size_bytes()) / (1024.0 * 1024.0) * now.copy_seconds_per_mib;
  report.modeled_makespan_seconds = makespan + copy_time;
  return report;
}

}  // namespace gemfi::campaign
