// Minimal JSON support for the campaign telemetry stream.
//
// Campaign observers emit one JSON object per line (JSON Lines); this header
// provides exactly what that needs and nothing more: string escaping, a
// single-line object writer, and a small recursive-descent parser used by
// the replay path and the validation tests. Numbers keep their raw source
// text so 64-bit seeds and tick counts round-trip exactly (a double-only
// parser silently loses precision above 2^53).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace gemfi::campaign::jsonl {

/// Escape for inclusion inside a JSON string literal (no surrounding quotes).
std::string escape(std::string_view s);

/// Builds one flat JSON object on a single line, in field insertion order.
class ObjectWriter {
 public:
  ObjectWriter& field(std::string_view key, std::string_view value);
  ObjectWriter& field(std::string_view key, const char* value);
  ObjectWriter& field(std::string_view key, std::uint64_t value);
  ObjectWriter& field(std::string_view key, double value);
  ObjectWriter& field(std::string_view key, bool value);

  /// The finished `{...}` object (no trailing newline).
  [[nodiscard]] std::string str() const;

 private:
  ObjectWriter& raw(std::string_view key, std::string_view rendered);
  std::string body_;
};

/// Parsed JSON value. Object keys are unique (last wins, as in JSON).
struct Value {
  enum class Kind : std::uint8_t { Null, Bool, Number, String, Object, Array };

  Kind kind = Kind::Null;
  bool boolean = false;
  std::string text;  // String: decoded contents; Number: raw source token
  std::map<std::string, Value> object;
  std::vector<Value> array;

  [[nodiscard]] bool is_object() const noexcept { return kind == Kind::Object; }
  /// Member access; throws std::out_of_range if absent or not an object.
  [[nodiscard]] const Value& at(const std::string& key) const;
  [[nodiscard]] bool has(const std::string& key) const;

  /// Typed reads; each throws std::invalid_argument on a kind mismatch.
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] std::uint64_t as_u64() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] bool as_bool() const;
};

/// Parse one complete JSON document (e.g. one JSONL line). Throws
/// std::invalid_argument with position information on malformed input;
/// trailing non-whitespace is an error.
Value parse(std::string_view text);

}  // namespace gemfi::campaign::jsonl
