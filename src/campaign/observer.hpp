// Campaign observability (the telemetry side of the paper's Sec. V story):
// campaigns are only cheap at scale if a hung or crashed experiment is
// visible while the campaign runs, not after it joins. Runners notify a
// CampaignObserver as each experiment completes; the two bundled observers
// stream one JSONL record per experiment (enough to re-run it in isolation)
// and print a throttled progress line with an outcome histogram and ETA.
//
// Thread-safety contract: on_experiment() may be invoked concurrently from
// every worker thread of a campaign; implementations must synchronize
// internally (both bundled observers lock). on_campaign_begin()/end() are
// called from the campaign's calling thread, before/after all workers.
#pragma once

#include <cstdio>
#include <fstream>
#include <mutex>
#include <string>

#include "campaign/runner.hpp"
#include "util/stats.hpp"

namespace gemfi::campaign {

/// Render one telemetry record as a single-line JSON object (no newline).
/// The record is self-contained for replay: `fault` round-trips through
/// fi::parse_fault(), and (seed, index) regenerate the fault via
/// seeded_fault_any() when the campaign used seeded generation.
///
/// With `include_host_timing` false, the host-side fields (wall_seconds, and
/// the fast-mode flag recording which engine tier produced the run) are
/// omitted; every remaining field is a pure function of the seeded
/// simulation, so two runs of the same campaign — fast mode on or off —
/// produce byte-identical lines, the form the determinism regression tests
/// and `--replay` compare.
std::string experiment_record_to_json(const ExperimentRecord& rec,
                                      bool include_host_timing = true);

/// One "calibrated" header line for a campaign JSONL stream: the golden-run
/// costs, the host wall time calibration took, and the engine tier that
/// produced it. Emitted before the experiment records by the campaign CLIs.
std::string calibration_record_to_json(const std::string& app_name, const CalibratedApp& ca,
                                       bool fastmode);

class CampaignObserver {
 public:
  virtual ~CampaignObserver() = default;

  virtual void on_campaign_begin(std::size_t /*total_experiments*/) {}
  virtual void on_experiment(const ExperimentRecord& /*rec*/) {}
  virtual void on_campaign_end(const CampaignReport& /*report*/) {}

  /// One pre-rendered single-line JSON summary record (e.g. the
  /// `stopped_early` record the sequential stop rule emits, or the final
  /// aggregate). Called from the campaign's dispatch/control thread, at most
  /// a handful of times per campaign. JsonlSink appends it to the stream.
  virtual void on_campaign_summary(const std::string& /*line*/) {}
};

/// Streams one JSON line per completed experiment, flushed per record so a
/// killed campaign loses at most the in-flight experiments.
class JsonlSink final : public CampaignObserver {
 public:
  /// Truncates and writes `path`; throws std::runtime_error if unopenable.
  explicit JsonlSink(const std::string& path);
  /// Writes to an externally owned stream (tests, stdout adapters).
  explicit JsonlSink(std::ostream& os);

  void on_experiment(const ExperimentRecord& rec) override;
  void on_campaign_summary(const std::string& line) override { write_line(line); }

  /// Append one pre-rendered JSON line (e.g. the calibration header record).
  void write_line(const std::string& line);

  [[nodiscard]] std::size_t lines_written() const noexcept { return lines_; }

 private:
  std::mutex mutex_;
  std::ofstream owned_;
  std::ostream* os_;
  std::size_t lines_ = 0;
};

/// Prints a progress line at most every `min_interval_seconds` (and always
/// for the final experiment): done/total, outcome histogram so far, the
/// running mean experiment wall time, and an ETA from observed throughput.
class ProgressPrinter final : public CampaignObserver {
 public:
  explicit ProgressPrinter(std::FILE* out = stderr, double min_interval_seconds = 1.0);

  void on_campaign_begin(std::size_t total_experiments) override;
  void on_experiment(const ExperimentRecord& rec) override;

 private:
  std::mutex mutex_;
  std::FILE* out_;
  double min_interval_;
  std::size_t total_ = 0;
  std::size_t done_ = 0;
  std::size_t counts_[apps::kNumOutcomes] = {};
  util::RunningMean mean_wall_;
  double t0_ = 0.0;          // monotonic seconds at campaign begin
  double last_print_ = 0.0;  // monotonic seconds of the last line
};

/// Fans every event out to a fixed set of observers (e.g. JSONL + progress).
class TeeObserver final : public CampaignObserver {
 public:
  TeeObserver() = default;
  void add(CampaignObserver* obs) {
    if (obs) observers_.push_back(obs);
  }

  void on_campaign_begin(std::size_t total) override {
    for (CampaignObserver* o : observers_) o->on_campaign_begin(total);
  }
  void on_experiment(const ExperimentRecord& rec) override {
    for (CampaignObserver* o : observers_) o->on_experiment(rec);
  }
  void on_campaign_end(const CampaignReport& report) override {
    for (CampaignObserver* o : observers_) o->on_campaign_end(report);
  }
  void on_campaign_summary(const std::string& line) override {
    for (CampaignObserver* o : observers_) o->on_campaign_summary(line);
  }

 private:
  std::vector<CampaignObserver*> observers_;  // not owned
};

}  // namespace gemfi::campaign
