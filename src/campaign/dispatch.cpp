#include "campaign/dispatch.hpp"

#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>

#include "campaign/observer.hpp"
#include "campaign/wire.hpp"
#include "net/frame.hpp"
#include "net/sigint.hpp"
#include "net/socket.hpp"

namespace gemfi::campaign {

namespace {

using net::mono_seconds;

std::vector<std::uint8_t> frame_for(wire::MsgType type,
                                    std::span<const std::uint8_t> payload) {
  return net::encode_frame(std::uint8_t(type), payload);
}

}  // namespace

Autoscaler::Decision Autoscaler::tick(double now, std::size_t backlog,
                                      std::size_t capacity_slots, unsigned workers) {
  Decision d;
  if (!cfg_.enabled()) return d;
  if (now - last_action_ < cfg_.cooldown_s) return d;
  const double load =
      double(backlog) / double(std::max<std::size_t>(1, capacity_slots));
  if (workers < cfg_.min_workers) {
    d.spawn = cfg_.min_workers - workers;
  } else if (load > cfg_.high_watermark && workers < cfg_.max_workers) {
    d.spawn = std::min(cfg_.step, cfg_.max_workers - workers);
  } else if (load < cfg_.low_watermark && workers > cfg_.min_workers) {
    d.retire = std::min(cfg_.step, workers - cfg_.min_workers);
  }
  if (d.spawn != 0 || d.retire != 0) last_action_ = now;
  return d;
}

// ---------------------------------------------------------------------------
// Master
// ---------------------------------------------------------------------------

struct Master::Impl {
  const CalibratedApp& ca;
  std::vector<fi::Fault> faults;
  CampaignConfig cfg;
  DispatchConfig dcfg;

  net::TcpListener listener;
  net::UnixListener unix_listener;  // valid only when dcfg.unix_path set
  net::SelfPipe wake;
  std::atomic<bool> drain_requested{false};

  // Streaming analytics + the sequential stop rule (v5). The aggregator
  // always runs (it is cheap); the stop rule only fires when dcfg.stop is
  // enabled. `stopping` latches once so the cancel fan-out happens exactly
  // once.
  Aggregator agg;
  bool stopping = false;

  // Elastic fleet. spawned_not_joined counts workers the spawn callback
  // started that have not sent Hello yet, so the policy does not re-spawn
  // for the same backlog every cooldown period.
  Autoscaler scaler;
  std::function<void(unsigned)> spawn_cb;
  unsigned spawned_not_joined = 0;

  // The Welcome frame is serialized once: every joining worker receives the
  // same bytes (the NoW "checkpoint copy" shipped per workstation).
  std::vector<std::uint8_t> welcome_frame;
  std::size_t welcome_payload_bytes = 0;

  struct WorkerConn {
    unsigned id = 0;
    net::TcpConn conn;
    net::FrameReader reader;
    unsigned slots = 0;
    bool ready = false;     // Hello received, Welcome sent
    bool retiring = false;  // autoscaler sent Shutdown; EOF is expected, not a loss
    std::uint32_t busy_slots = 0;  // last Heartbeat's occupancy
    net::FrameLiveness liveness;
    double joined_at = 0.0;
    std::unordered_map<std::uint64_t, double> inflight;  // index -> dispatch time

    WorkerConn(net::TcpConn c, std::size_t max_frame, double now)
        : conn(std::move(c)), reader(max_frame), joined_at(now) {
      liveness.reset(now);
    }
  };
  std::vector<std::unique_ptr<WorkerConn>> workers;
  unsigned next_worker_id = 0;

  // Completed results stream straight to cfg.observer (JSONL sink, progress
  // printer) and are not retained: only these bitmaps scale with the
  // campaign, so a million-experiment campaign costs the master two bytes
  // per experiment, not a full ExperimentResult each.
  std::deque<std::uint64_t> pending;
  std::vector<std::uint8_t> done;
  std::vector<std::uint8_t> redispatches;  // slow-path duplicates issued
  std::size_t completed = 0;

  DispatchReport stats;  // counters accumulate here during the run

  Impl(const CalibratedApp& ca_in, const apps::AppScale& scale,
       const std::vector<fi::Fault>& faults_in, const CampaignConfig& cfg_in,
       const DispatchConfig& dcfg_in)
      : ca(ca_in), faults(faults_in), cfg(cfg_in), dcfg(dcfg_in),
        agg(dcfg_in.stop, faults_in.size()), scaler(dcfg_in.autoscale) {
    const auto payload = wire::encode_welcome(wire::Welcome::from(ca, scale, cfg));
    welcome_payload_bytes = payload.size();
    welcome_frame = frame_for(wire::MsgType::Welcome, payload);
    listener = net::TcpListener::bind_listen(dcfg.bind_address, dcfg.port);
    if (!dcfg.unix_path.empty())
      unix_listener = net::UnixListener::bind_listen(dcfg.unix_path);

    done.assign(faults.size(), 0);
    redispatches.assign(faults.size(), 0);
    for (std::uint64_t i = 0; i < faults.size(); ++i) pending.push_back(i);
  }

  [[nodiscard]] std::size_t total_inflight() const {
    std::size_t n = 0;
    for (const auto& w : workers) n += w->inflight.size();
    return n;
  }

  void observe(std::uint64_t index, const ExperimentResult& er, unsigned worker_id) {
    const ExperimentRecord rec{std::size_t(index), worker_id,
                               experiment_seed(cfg.campaign_seed, index), er};
    if (cfg.observer) cfg.observer->on_experiment(rec);
    if (agg.add(rec)) start_early_stop();
  }

  /// The stop rule just held on the index-ordered prefix: stop dispatching,
  /// reclaim every queued experiment (master-side queue + CancelQueue to the
  /// workers), and emit the deterministic stopped_early summary. In-flight
  /// experiments finish normally; the drain condition in run() does the rest.
  void start_early_stop() {
    if (stopping) return;
    stopping = true;
    stats.stopped_early = true;
    stats.stop_index = agg.stop_index();
    drain_requested.store(true, std::memory_order_relaxed);
    stats.cancelled += pending.size();
    pending.clear();
    const auto frame = frame_for(wire::MsgType::CancelQueue, {});
    for (const auto& w : workers) {
      if (!w->ready) continue;
      try {
        w->conn.send_all(frame, /*timeout_s=*/2.0);
      } catch (const std::exception&) {
        // The regular liveness path reaps it; its queue dies with it.
      }
    }
    stats.aggregate_summary = agg.summary_json("stopped_early");
    if (cfg.observer) cfg.observer->on_campaign_summary(stats.aggregate_summary);
  }

  /// Forget `index` on every connection (a redispatched experiment may be in
  /// flight on two workers when its first result lands).
  void clear_inflight_everywhere(std::uint64_t index) {
    for (const auto& w : workers) w->inflight.erase(index);
  }

  void handle_result(WorkerConn& w, const wire::ResultMsg& msg) {
    if (msg.index >= faults.size())
      throw net::ProtocolError("result for unknown experiment " +
                               std::to_string(msg.index));
    w.inflight.erase(msg.index);
    if (done[msg.index]) {
      // Exactly-once: a redispatch or a zombie worker replayed it; first
      // result won, drop this one.
      ++stats.duplicate_results;
      return;
    }
    done[msg.index] = 1;
    ++completed;
    ++stats.campaign.counts[std::size_t(msg.result.classification.outcome)];
    ++stats.campaign.syscall_counts[std::size_t(msg.result.syscall_class.outcome)];
    if (msg.result.syscall_class.cascade_len > stats.campaign.max_cascade)
      stats.campaign.max_cascade = msg.result.syscall_class.cascade_len;
    stats.experiment_wall_seconds += msg.result.wall_seconds;
    clear_inflight_everywhere(msg.index);
    observe(msg.index, msg.result, w.id);
  }

  void handle_frame(WorkerConn& w, const net::Frame& f) {
    switch (wire::MsgType(f.type)) {
      case wire::MsgType::Hello: {
        if (w.ready) throw net::ProtocolError("duplicate Hello");
        const wire::Hello hello = wire::decode_hello(f.payload);
        w.slots = hello.slots;
        w.conn.send_all(welcome_frame);
        w.ready = true;
        ++stats.workers_joined;
        if (spawned_not_joined > 0) --spawned_not_joined;
        stats.checkpoint_bytes_shipped += welcome_payload_bytes;
        break;
      }
      case wire::MsgType::Result:
        if (!w.ready) throw net::ProtocolError("Result before Hello");
        handle_result(w, wire::decode_result(f.payload));
        break;
      case wire::MsgType::Heartbeat:
        if (!w.ready) throw net::ProtocolError("Heartbeat before Hello");
        w.busy_slots = wire::decode_heartbeat(f.payload).busy_slots;
        break;
      case wire::MsgType::CancelAck: {
        if (!w.ready) throw net::ProtocolError("CancelAck before Hello");
        // The worker dropped these queued-not-started experiments; they are
        // uniquely owned (never redispatched after the stop), so forgetting
        // them here lets the drain finish after only the running ones.
        for (const std::uint64_t index : wire::decode_cancel_ack(f.payload).dropped)
          if (index < faults.size() && !done[index] && w.inflight.erase(index) != 0)
            ++stats.cancelled;
        break;
      }
      default:
        throw net::ProtocolError("unexpected message type " + std::to_string(f.type));
    }
  }

  /// Drain readable bytes and process complete frames. Returns false if the
  /// worker must be dropped (EOF or damage).
  bool service_readable(WorkerConn& w, bool count_protocol_damage) {
    std::uint8_t buf[64 * 1024];
    try {
      for (;;) {
        const auto got = w.conn.recv_some(buf);
        if (!got) return false;  // EOF
        if (*got == 0) break;    // drained
        w.reader.feed(std::span<const std::uint8_t>(buf, *got));
        bool frame_completed = false;
        while (auto f = w.reader.next()) {
          frame_completed = true;
          handle_frame(w, *f);
        }
        w.liveness.on_read(mono_seconds(), frame_completed, w.reader.buffered());
      }
      return true;
    } catch (const std::exception&) {
      // ProtocolError, DeserializeError from a decoder, or a SocketError on
      // the Welcome send: the peer is unusable either way.
      if (count_protocol_damage) ++stats.frames_rejected;
      return false;
    }
  }

  void requeue_worker_inflight(WorkerConn& w) {
    for (const auto& [index, since] : w.inflight) {
      (void)since;
      if (done[index]) continue;
      bool elsewhere = false;
      for (const auto& other : workers)
        if (other.get() != &w && other->inflight.count(index)) elsewhere = true;
      if (elsewhere) continue;  // the redispatched copy is still running
      pending.push_front(index);
      ++stats.requeued;
    }
    w.inflight.clear();
  }

  void drop_worker(std::size_t i, bool lost) {
    WorkerConn& w = *workers[i];
    if (lost && w.ready && !w.retiring) ++stats.workers_lost;
    requeue_worker_inflight(w);
    workers.erase(workers.begin() + std::ptrdiff_t(i));
  }

  /// Ship up to `limit` pending experiments to worker `w`.
  bool dispatch_to(WorkerConn& w, std::size_t limit) {
    std::vector<wire::BatchItem> items;
    const double now = mono_seconds();
    while (items.size() < limit && !pending.empty()) {
      const std::uint64_t index = pending.front();
      pending.pop_front();
      if (done[index]) continue;  // completed while queued for redispatch
      items.push_back({index, faults[index].to_line()});
      w.inflight.emplace(index, now);
    }
    if (items.empty()) return true;
    try {
      w.conn.send_all(frame_for(wire::MsgType::Batch, wire::encode_batch(items)));
      return true;
    } catch (const std::exception&) {
      return false;
    }
  }

  void dispatch_all() {
    if (drain_requested.load(std::memory_order_relaxed)) return;
    for (std::size_t i = 0; i < workers.size();) {
      WorkerConn& w = *workers[i];
      const std::size_t target = std::size_t(w.slots) * dcfg.pipeline_depth;
      if (!w.ready || w.retiring || w.inflight.size() >= target || pending.empty()) {
        ++i;
        continue;
      }
      if (!dispatch_to(w, target - w.inflight.size())) {
        drop_worker(i, /*lost=*/true);
        continue;
      }
      ++i;
    }
  }

  /// Slow-worker mitigation: an experiment stuck in flight past the
  /// threshold is dispatched once more to a different worker with capacity;
  /// dedup keeps whichever result lands first.
  void redispatch_slow() {
    if (dcfg.slow_redispatch_s <= 0.0) return;
    const double now = mono_seconds();
    for (const auto& slow : workers) {
      if (!slow->ready) continue;
      for (const auto& [index, since] : slow->inflight) {
        if (done[index] || redispatches[index] != 0) continue;
        if (now - since < dcfg.slow_redispatch_s) continue;
        for (const auto& spare : workers) {
          if (spare.get() == slow.get() || !spare->ready || spare->retiring) continue;
          if (spare->inflight.size() >= std::size_t(spare->slots) * dcfg.pipeline_depth)
            continue;
          std::vector<wire::BatchItem> one{{index, faults[index].to_line()}};
          try {
            spare->conn.send_all(
                frame_for(wire::MsgType::Batch, wire::encode_batch(one)));
            spare->inflight.emplace(index, now);
            redispatches[index] = 1;
            ++stats.redispatched;
          } catch (const std::exception&) {
            // The spare just died; the regular timeout path reaps it.
          }
          break;
        }
      }
    }
  }

  void reap_silent_workers() {
    const double now = mono_seconds();
    for (std::size_t i = 0; i < workers.size();) {
      const WorkerConn& w = *workers[i];
      if (w.liveness.expired(now, dcfg.worker_timeout_s, dcfg.frame_grace_s)) {
        ++stats.peers_timed_out;
        drop_worker(i, /*lost=*/true);
      } else {
        ++i;
      }
    }
  }

  /// Elastic fleet tick: sample backlog/capacity, apply the watermark
  /// policy. Growth goes through the spawn callback; retirement picks idle
  /// (inflight-empty) ready workers and shuts them down gracefully — never
  /// counted as lost, never taking work down with them.
  void autoscale_tick() {
    if (!dcfg.autoscale.enabled()) return;
    if (stopping || drain_requested.load(std::memory_order_relaxed)) return;

    std::size_t capacity = 0;
    unsigned active = 0;
    for (const auto& w : workers) {
      if (!w->ready || w->retiring) continue;
      ++active;
      capacity += w->slots;
    }
    const std::size_t backlog = pending.size() + total_inflight();
    const auto d = scaler.tick(mono_seconds(), backlog, capacity,
                               active + spawned_not_joined);

    if (d.spawn != 0 && spawn_cb) {
      spawn_cb(d.spawn);
      spawned_not_joined += d.spawn;
      stats.workers_spawned += d.spawn;
    }
    if (d.retire != 0) {
      const auto frame = frame_for(wire::MsgType::Shutdown, {});
      unsigned remaining = d.retire;
      for (const auto& w : workers) {
        if (remaining == 0) break;
        if (!w->ready || w->retiring || !w->inflight.empty()) continue;
        try {
          w->conn.send_all(frame, /*timeout_s=*/2.0);
        } catch (const std::exception&) {
          continue;  // dying anyway; the liveness path reaps it
        }
        w->retiring = true;
        ++stats.workers_retired;
        --remaining;
      }
    }
  }

  void broadcast_shutdown() {
    const auto frame = frame_for(wire::MsgType::Shutdown, {});
    for (const auto& w : workers) {
      try {
        w->conn.send_all(frame, /*timeout_s=*/2.0);
      } catch (const std::exception&) {
        // Exiting anyway.
      }
    }
  }

  DispatchReport run() {
    const double t0 = mono_seconds();
    net::ScopedSigint sigint(&wake, dcfg.handle_sigint);
    if (cfg.observer) cfg.observer->on_campaign_begin(faults.size());

    const double first_worker_deadline = t0 + dcfg.first_worker_timeout_s;
    while (completed < faults.size()) {
      if (drain_requested.load(std::memory_order_relaxed) && total_inflight() == 0) {
        stats.drained_early = true;
        break;
      }

      std::vector<pollfd> fds;
      fds.push_back({listener.fd(), POLLIN, 0});
      fds.push_back({wake.read_fd(), POLLIN, 0});
      if (unix_listener.valid()) fds.push_back({unix_listener.fd(), POLLIN, 0});
      const std::size_t base = fds.size();
      for (const auto& w : workers) fds.push_back({w->conn.fd(), POLLIN, 0});
      ::poll(fds.data(), nfds_t(fds.size()), int(dcfg.poll_interval_s * 1000.0) + 1);

      if (fds[1].revents & POLLIN) {
        wake.drain();
        drain_requested.store(true, std::memory_order_relaxed);
      }

      const auto adopt = [&](std::optional<net::TcpConn> conn) {
        auto w = std::make_unique<WorkerConn>(std::move(*conn),
                                              dcfg.max_worker_frame, mono_seconds());
        w->id = next_worker_id++;
        workers.push_back(std::move(w));
      };
      if (fds[0].revents & POLLIN)
        while (auto conn = listener.accept()) adopt(std::move(conn));
      if (unix_listener.valid() && (fds[2].revents & POLLIN))
        while (auto conn = unix_listener.accept()) adopt(std::move(conn));

      // fds[i + base] belongs to workers[i] as the loop entered poll()
      // (newly accepted connections only append); service back-to-front so
      // drop_worker()'s erase cannot shift unvisited entries.
      const std::size_t polled = fds.size() - base;
      for (std::size_t i = polled; i-- > 0;) {
        if ((fds[i + base].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
        if (!service_readable(*workers[i], /*count_protocol_damage=*/true))
          drop_worker(i, /*lost=*/true);
      }

      reap_silent_workers();
      redispatch_slow();
      autoscale_tick();
      dispatch_all();

      if (stats.workers_joined == 0 && mono_seconds() > first_worker_deadline)
        throw std::runtime_error(
            "campaign master: no worker joined within " +
            std::to_string(dcfg.first_worker_timeout_s) + "s");
    }

    broadcast_shutdown();
    listener.close();
    unix_listener.close();

    stats.done = done;
    stats.completed = completed;
    stats.wall_seconds = mono_seconds() - t0;
    stats.campaign.wall_seconds = stats.wall_seconds;
    // Final aggregate summary: only for --stop-ci campaigns that completed
    // in full (the stopped_early record was already emitted at the stop;
    // a second summary over the nondeterministic straggler set would break
    // byte-identity between replays).
    if (dcfg.stop.enabled() && !stats.stopped_early && completed == faults.size()) {
      stats.aggregate_summary = agg.summary_json("summary");
      if (cfg.observer) cfg.observer->on_campaign_summary(stats.aggregate_summary);
    }
    if (cfg.observer) cfg.observer->on_campaign_end(stats.campaign);
    return std::move(stats);
  }
};

Master::Master(const CalibratedApp& ca, const apps::AppScale& scale,
               const std::vector<fi::Fault>& faults, const CampaignConfig& cfg,
               const DispatchConfig& dcfg)
    : impl_(std::make_unique<Impl>(ca, scale, faults, cfg, dcfg)) {}

Master::~Master() = default;

std::uint16_t Master::port() const noexcept { return impl_->listener.port(); }

DispatchReport Master::run() { return impl_->run(); }

void Master::request_drain() noexcept {
  impl_->drain_requested.store(true, std::memory_order_relaxed);
  impl_->wake.notify();
}

void Master::set_spawn_callback(std::function<void(unsigned)> spawn) {
  impl_->spawn_cb = std::move(spawn);
}

// ---------------------------------------------------------------------------
// Worker
// ---------------------------------------------------------------------------

namespace {

/// Everything one established connection needs: the rebuilt app, the slot
/// threads with their persistent Simulations, and the in/out queues between
/// the socket loop and the slots.
class WorkerSession {
 public:
  WorkerSession(const wire::Welcome& welcome, unsigned slots)
      : ca_(welcome.rebuild_app()), cfg_(welcome.rebuild_config()) {
    if (cfg_.use_checkpoint && cfg_.shared_baseline && !ca_.checkpoint.empty()) {
      try {
        baseline_.emplace(chkpt::CheckpointImage::parse(ca_.checkpoint));
      } catch (const std::exception&) {
        baseline_.reset();  // damaged: per-experiment path reports it
      }
    }
    threads_.reserve(slots);
    for (unsigned i = 0; i < slots; ++i) threads_.emplace_back([this] { slot_main(); });
  }

  ~WorkerSession() {
    {
      std::lock_guard lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& t : threads_) t.join();
  }

  void enqueue(std::vector<std::pair<std::uint64_t, fi::Fault>> items) {
    {
      std::lock_guard lock(mutex_);
      for (auto& it : items) in_.push_back(std::move(it));
    }
    cv_.notify_all();
  }

  std::vector<wire::ResultMsg> take_results() {
    std::lock_guard lock(mutex_);
    std::vector<wire::ResultMsg> out(std::make_move_iterator(out_.begin()),
                                     std::make_move_iterator(out_.end()));
    out_.clear();
    return out;
  }

  /// Drop every queued-not-started experiment (CancelQueue); returns the
  /// dropped indices for the CancelAck. Experiments already claimed by a
  /// slot keep running and report normally.
  std::vector<std::uint64_t> cancel_queued() {
    std::lock_guard lock(mutex_);
    std::vector<std::uint64_t> dropped;
    dropped.reserve(in_.size());
    for (const auto& [index, fault] : in_) {
      (void)fault;
      dropped.push_back(index);
    }
    in_.clear();
    return dropped;
  }

  [[nodiscard]] unsigned busy_slots() const noexcept {
    return busy_.load(std::memory_order_relaxed);
  }

 private:
  void slot_main() {
    // One persistent Simulation per slot (the shared-baseline fast restore),
    // exactly like a local run_campaign worker thread.
    std::optional<ExperimentWorker> ew;
    if (baseline_) ew.emplace(ca_, *baseline_, cfg_);
    for (;;) {
      std::pair<std::uint64_t, fi::Fault> item;
      {
        std::unique_lock lock(mutex_);
        cv_.wait(lock, [this] { return stop_ || !in_.empty(); });
        if (stop_) return;
        item = std::move(in_.front());
        in_.pop_front();
      }
      busy_.fetch_add(1, std::memory_order_relaxed);
      wire::ResultMsg msg;
      msg.index = item.first;
      try {
        const std::vector<fi::SyscallFaultPlan> plans =
            plans_for_experiment(cfg_, item.first);
        msg.result = ew ? ew->run_with_retry(item.second, &plans)
                        : run_experiment_with_retry(ca_, item.second, cfg_, &plans);
      } catch (const std::exception& e) {
        // run_with_retry contracts never to throw; belt and braces so one
        // experiment cannot take the whole worker process down.
        msg.result.fault = item.second;
        msg.result.sim_error = e.what();
        msg.result.exit_reason = sim::ExitReason::Crashed;
        msg.result.classification.outcome = apps::Outcome::Crashed;
      }
      busy_.fetch_sub(1, std::memory_order_relaxed);
      {
        std::lock_guard lock(mutex_);
        out_.push_back(std::move(msg));
      }
    }
  }

  CalibratedApp ca_;
  CampaignConfig cfg_;
  std::optional<chkpt::CheckpointImage> baseline_;

  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::deque<std::pair<std::uint64_t, fi::Fault>> in_;
  std::deque<wire::ResultMsg> out_;
  std::atomic<unsigned> busy_{0};

  std::vector<std::thread> threads_;
};

/// Outcome of one established connection.
enum class SessionEnd { Shutdown, ConnectionLost };

SessionEnd serve_connection(net::TcpConn& conn, const WorkerConfig& wcfg) {
  conn.send_all(frame_for(wire::MsgType::Hello,
                          wire::encode_hello({wire::kProtocolVersion, wcfg.slots})));

  net::FrameReader reader(wcfg.max_master_frame);
  std::uint8_t buf[64 * 1024];

  // Wait for the Welcome (the checkpoint ship can take a moment on a LAN).
  // The master may pipeline the first Batch right behind it; stop draining
  // the reader as soon as the Welcome is out and let the main loop pick up
  // whatever stayed buffered.
  std::optional<wire::Welcome> welcome;
  const double welcome_deadline = mono_seconds() + 60.0;
  while (!welcome) {
    if (mono_seconds() > welcome_deadline) return SessionEnd::ConnectionLost;
    if (!conn.wait_readable(0.25)) continue;
    const auto got = conn.recv_some(buf);
    if (!got) return SessionEnd::ConnectionLost;
    reader.feed(std::span<const std::uint8_t>(buf, *got));
    if (auto f = reader.next()) {
      if (wire::MsgType(f->type) == wire::MsgType::Shutdown) return SessionEnd::Shutdown;
      if (wire::MsgType(f->type) != wire::MsgType::Welcome)
        throw net::ProtocolError("expected Welcome");
      welcome = wire::decode_welcome(f->payload);
    }
  }

  WorkerSession session(*welcome, wcfg.slots);
  double last_heartbeat = 0.0;
  std::uint64_t heartbeat_seq = 0;
  bool shutdown = false;

  while (!shutdown) {
    // Frames may already be buffered (pipelined behind the Welcome or from a
    // previous oversized recv) — drain before blocking on the socket.
    while (auto f = reader.next()) {
      switch (wire::MsgType(f->type)) {
        case wire::MsgType::Batch: {
          std::vector<std::pair<std::uint64_t, fi::Fault>> items;
          for (const wire::BatchItem& it : wire::decode_batch(f->payload))
            items.emplace_back(it.index, fi::parse_fault(it.fault_line));
          session.enqueue(std::move(items));
          break;
        }
        case wire::MsgType::Shutdown:
          shutdown = true;
          break;
        case wire::MsgType::CancelQueue: {
          wire::CancelAck ack;
          ack.dropped = session.cancel_queued();
          conn.send_all(
              frame_for(wire::MsgType::CancelAck, wire::encode_cancel_ack(ack)));
          break;
        }
        default:
          throw net::ProtocolError("unexpected master message type " +
                                   std::to_string(f->type));
      }
      if (shutdown) break;
    }
    if (shutdown) break;

    for (const wire::ResultMsg& msg : session.take_results())
      conn.send_all(frame_for(wire::MsgType::Result, wire::encode_result(msg)));

    const double now = mono_seconds();
    if (now - last_heartbeat >= wcfg.heartbeat_interval_s) {
      last_heartbeat = now;
      conn.send_all(frame_for(
          wire::MsgType::Heartbeat,
          wire::encode_heartbeat({heartbeat_seq++, session.busy_slots()})));
    }

    if (!conn.wait_readable(0.02)) continue;
    const auto got = conn.recv_some(buf);
    if (!got) return SessionEnd::ConnectionLost;
    reader.feed(std::span<const std::uint8_t>(buf, *got));
  }
  return SessionEnd::Shutdown;
}

}  // namespace

int run_worker(const WorkerConfig& wcfg) {
  unsigned reconnects = 0;
  for (;;) {
    net::TcpConn conn;
    try {
      conn = wcfg.unix_path.empty()
                 ? net::TcpConn::connect(wcfg.host, wcfg.port, wcfg.connect_attempts,
                                         wcfg.connect_backoff_s)
                 : net::TcpConn::connect_unix(wcfg.unix_path, wcfg.connect_attempts,
                                              wcfg.connect_backoff_s);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "gemfi worker: %s\n", e.what());
      return 2;
    }
    try {
      if (serve_connection(conn, wcfg) == SessionEnd::Shutdown) return 0;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "gemfi worker: %s\n", e.what());
    }
    // Established connection lost: bounded reconnect (the master will requeue
    // whatever we had in flight and greet us as a fresh worker).
    if (++reconnects > wcfg.max_reconnects) return 1;
  }
}

// ---------------------------------------------------------------------------
// Forked loopback workers (--now-local and the chaos tests)
// ---------------------------------------------------------------------------

namespace {

void fork_workers(std::vector<int>& pids, unsigned workers, std::uint16_t port,
                  const std::string& unix_path, unsigned slots,
                  unsigned max_reconnects) {
  std::fflush(stdout);
  std::fflush(stderr);
  for (unsigned i = 0; i < workers; ++i) {
    const pid_t pid = ::fork();
    if (pid < 0) throw net::SocketError("fork failed");
    if (pid == 0) {
      WorkerConfig wcfg;
      wcfg.host = "127.0.0.1";
      wcfg.port = port;
      wcfg.unix_path = unix_path;
      wcfg.slots = slots == 0 ? 1 : slots;
      wcfg.max_reconnects = max_reconnects;
      // _exit: never unwind into the parent's atexit/gtest machinery.
      ::_exit(run_worker(wcfg));
    }
    pids.push_back(int(pid));
  }
}

}  // namespace

LocalWorkerPool LocalWorkerPool::spawn(unsigned workers, std::uint16_t port,
                                       unsigned slots, unsigned max_reconnects) {
  LocalWorkerPool pool;
  fork_workers(pool.pids_, workers, port, {}, slots, max_reconnects);
  return pool;
}

LocalWorkerPool LocalWorkerPool::spawn_unix(unsigned workers, const std::string& path,
                                            unsigned slots, unsigned max_reconnects) {
  LocalWorkerPool pool;
  fork_workers(pool.pids_, workers, 0, path, slots, max_reconnects);
  return pool;
}

void LocalWorkerPool::grow(unsigned workers, std::uint16_t port, unsigned slots,
                           unsigned max_reconnects) {
  fork_workers(pids_, workers, port, {}, slots, max_reconnects);
}

void LocalWorkerPool::grow_unix(unsigned workers, const std::string& path,
                                unsigned slots, unsigned max_reconnects) {
  fork_workers(pids_, workers, 0, path, slots, max_reconnects);
}

void LocalWorkerPool::kill_worker(std::size_t i, int signo) const {
  if (i < pids_.size() && pids_[i] > 0) ::kill(pids_[i], signo);
}

int LocalWorkerPool::wait_all() {
  int failures = 0;
  for (int& pid : pids_) {
    if (pid <= 0) continue;
    int status = 0;
    if (::waitpid(pid, &status, 0) == pid)
      if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) ++failures;
    pid = -1;
  }
  return failures;
}

DispatchReport run_campaign_service_local(const CalibratedApp& ca,
                                          const apps::AppScale& scale,
                                          const std::vector<fi::Fault>& faults,
                                          const CampaignConfig& cfg, unsigned workers,
                                          unsigned slots, DispatchConfig dcfg) {
  dcfg.bind_address = "127.0.0.1";
  Master master(ca, scale, faults, cfg, dcfg);
  const bool over_unix = !dcfg.unix_path.empty();
  unsigned initial = workers == 0 ? 1 : workers;
  if (dcfg.autoscale.enabled())
    initial = std::max(1u, std::min(initial, dcfg.autoscale.max_workers));
  LocalWorkerPool pool =
      over_unix ? LocalWorkerPool::spawn_unix(initial, dcfg.unix_path, slots)
                : LocalWorkerPool::spawn(initial, master.port(), slots);
  if (dcfg.autoscale.enabled()) {
    // Elastic growth: the master's autoscaler forks additional loopback
    // workers into the same pool. Called from the run() loop thread; the
    // pool is only ever touched from that thread until wait_all below.
    const std::uint16_t port = master.port();
    const std::string unix_path = dcfg.unix_path;
    master.set_spawn_callback([&pool, port, unix_path, slots](unsigned n) {
      if (unix_path.empty()) pool.grow(n, port, slots);
      else pool.grow_unix(n, unix_path, slots);
    });
  }
  try {
    DispatchReport report = master.run();
    pool.wait_all();
    return report;
  } catch (...) {
    for (std::size_t i = 0; i < pool.pids().size(); ++i) pool.kill_worker(i, SIGKILL);
    pool.wait_all();
    throw;
  }
}

}  // namespace gemfi::campaign
