// True multi-process NoW campaign dispatch (paper Sec. III-E, done for real).
//
// NowRunner models the paper's 27x4 cluster with in-process threads; this
// layer actually distributes a campaign across process/host boundaries:
//
//   master                                 worker (xN processes/hosts)
//   ------                                 ------
//   bind/listen, serialize Welcome once    connect (bounded backoff)
//                                    <---  Hello{version, slots}
//   Welcome{app, config, checkpoint} --->  rebuild CalibratedApp, parse the
//                                          CheckpointImage once, start one
//                                          persistent-Simulation thread/slot
//   Batch{(index, fault)...}         --->  run experiments
//                                    <---  Result{index, ExperimentResult}  (streamed)
//                                    <---  Heartbeat (liveness)
//   Shutdown                         --->  join slots, exit
//
// Robustness is first-class: the master detects dead workers (EOF, send
// failure, heartbeat silence) and slow workers (optional per-experiment
// redispatch age), requeues or re-dispatches their in-flight experiments,
// and deduplicates results by experiment id so every experiment completes
// exactly once — first result wins, replays are counted and dropped. Fault
// identity is preserved verbatim over the wire (Fault::to_line round-trip),
// so the deterministic splitmix64 seeding and `--replay` work unchanged.
// SIGINT (opt-in) drains gracefully: stop dispatching, collect in-flight
// results, then shut workers down and report the partial campaign.
//
// Results stream into the existing CampaignObserver pipeline
// (JsonlSink/ProgressPrinter) from the master's single event-loop thread as
// they arrive — a distributed campaign is observable exactly like a local one.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "campaign/analytics/aggregator.hpp"
#include "campaign/runner.hpp"

namespace gemfi::campaign {

/// Elastic worker-fleet policy: grow when the backlog per slot crosses the
/// high watermark, retire idle workers when it falls under the low one.
/// max_workers == 0 disables autoscaling entirely.
struct AutoscaleConfig {
  unsigned min_workers = 0;
  unsigned max_workers = 0;

  /// Watermarks are backlog-per-slot (pending + in-flight experiments over
  /// total fleet slots). With pipeline_depth 2 a saturated fleet sits near
  /// 2, so growth starts well above that and retirement well below.
  double high_watermark = 4.0;
  double low_watermark = 1.0;

  /// Minimum seconds between scaling actions — the hysteresis that keeps a
  /// load hovering at a watermark from flapping spawn/retire.
  double cooldown_s = 1.0;
  unsigned step = 1;  // workers per scaling action

  [[nodiscard]] bool enabled() const noexcept { return max_workers > 0; }
};

/// Pure watermark-hysteresis policy, separated from the Master so the
/// no-oscillation property is unit-testable without sockets or forks. The
/// caller samples (backlog, capacity, workers) and applies the decision;
/// `workers` must include spawns still connecting, or every cooldown period
/// would re-spawn for the same backlog.
class Autoscaler {
 public:
  explicit Autoscaler(const AutoscaleConfig& cfg) : cfg_(cfg) {}

  struct Decision {
    unsigned spawn = 0;
    unsigned retire = 0;
  };

  Decision tick(double now, std::size_t backlog, std::size_t capacity_slots,
                unsigned workers);

  [[nodiscard]] const AutoscaleConfig& config() const noexcept { return cfg_; }

 private:
  AutoscaleConfig cfg_;
  double last_action_ = -1e300;
};

/// Master-side service tuning.
struct DispatchConfig {
  std::string bind_address = "127.0.0.1";  // 0.0.0.0 to serve a real cluster
  std::uint16_t port = 0;                  // 0 = ephemeral (see Master::port())

  /// A worker that completes no frame for this long is declared dead and its
  /// in-flight experiments requeued. Raw bytes do NOT count as liveness: a
  /// peer drip-feeding bytes without ever finishing a frame is reaped too
  /// (see frame_grace_s).
  double worker_timeout_s = 15.0;

  /// Extra budget for a partial frame in flight: once a peer is idle past
  /// worker_timeout_s (no complete frame), a half-received frame keeps it
  /// alive for at most this long from the moment the frame started arriving.
  /// Protects a slow worker mid-large-frame without opening the trickle hole.
  double frame_grace_s = 10.0;

  /// Heartbeat period workers are asked to keep (shipped implicitly: workers
  /// default to a fraction of worker_timeout_s on their side).
  double poll_interval_s = 0.05;  // master event-loop tick

  /// > 0: an experiment in flight on one worker for longer than this is
  /// additionally dispatched to another worker with spare capacity (at most
  /// once per experiment); whichever result arrives first wins. 0 = off.
  double slow_redispatch_s = 0.0;

  /// Give up if no worker has ever joined within this window.
  double first_worker_timeout_s = 60.0;

  /// In-flight experiments per worker = slots * pipeline_depth (keeps slots
  /// busy while batches are in transit).
  unsigned pipeline_depth = 2;

  /// Largest frame accepted *from* a worker (results are small; a peer
  /// announcing a huge payload is dropped before any allocation).
  std::size_t max_worker_frame = 1 << 20;

  /// Install a SIGINT handler for the duration of run() that triggers the
  /// graceful drain (CLIs set this; library callers usually do not).
  bool handle_sigint = false;

  /// Sequential early-stop rule (--stop-ci). When enabled, every result
  /// feeds a streaming Aggregator; once the index-ordered prefix satisfies
  /// the rule the master cancels the queue (its own and, via CancelQueue
  /// frames, the workers'), drains in-flight work, and emits a
  /// `stopped_early` summary record through the observer.
  StopPolicy stop;

  /// Non-empty: additionally listen on this AF_UNIX stream socket, so
  /// same-host workers can skip the loopback TCP stack. The TCP listener
  /// stays up regardless ('gfnw' framing is transport-agnostic).
  std::string unix_path;

  /// Elastic fleet policy; requires a spawn callback (see
  /// Master::set_spawn_callback) for the growth half.
  AutoscaleConfig autoscale;
};

/// What the service adds on top of the merged CampaignReport.
///
/// Results are streamed to cfg.observer as they arrive and are NOT retained:
/// campaign.results stays empty so a million-experiment campaign holds only
/// the done/redispatch bitmaps in master memory. campaign.counts and the
/// aggregate timings below are accumulated incrementally instead.
struct DispatchReport {
  CampaignReport campaign;          // counts/wall only; results intentionally empty
  std::vector<std::uint8_t> done;   // per-experiment completion mask
  std::size_t completed = 0;
  double experiment_wall_seconds = 0.0;  // sum of per-result wall_seconds

  unsigned workers_joined = 0;      // registrations (a reconnect counts again)
  unsigned workers_lost = 0;        // EOF / timeout / protocol damage
  std::uint64_t requeued = 0;       // in-flight experiments taken off dead workers
  std::uint64_t redispatched = 0;   // slow-worker duplicate dispatches
  std::uint64_t duplicate_results = 0;  // dropped by exactly-once dedup
  std::uint64_t frames_rejected = 0;    // protocol-damaged peers dropped
  std::uint64_t peers_timed_out = 0;    // reaped by the liveness deadline
  std::uint64_t checkpoint_bytes_shipped = 0;  // Welcome payload total
  bool drained_early = false;       // drain (SIGINT or early stop): done[] partial
  double wall_seconds = 0.0;

  // Sequential early stop (v5).
  bool stopped_early = false;       // the stop rule fired
  std::uint64_t stop_index = 0;     // prefix length that satisfied the rule
  std::uint64_t cancelled = 0;      // queued experiments reclaimed unrun
  std::string aggregate_summary;    // last summary JSON emitted ("" if none)

  // Elastic fleet.
  unsigned workers_spawned = 0;     // autoscale growth actions (workers forked)
  unsigned workers_retired = 0;     // idle workers gracefully shut down
};

/// The campaign master: owns the listening socket and runs the poll-based
/// event loop to completion. Single-threaded; cfg.observer is invoked from
/// the loop thread only.
class Master {
 public:
  /// Binds and listens immediately (so workers spawned right after
  /// construction can connect) but serves nothing until run().
  Master(const CalibratedApp& ca, const apps::AppScale& scale,
         const std::vector<fi::Fault>& faults, const CampaignConfig& cfg,
         const DispatchConfig& dcfg);
  ~Master();

  Master(const Master&) = delete;
  Master& operator=(const Master&) = delete;

  [[nodiscard]] std::uint16_t port() const noexcept;

  /// Serve the campaign until every experiment has exactly one result (or a
  /// SIGINT drain). Throws std::runtime_error if no worker ever joins.
  DispatchReport run();

  /// Request a graceful drain programmatically (thread-safe, also callable
  /// from an observer callback): stop dispatching, collect in-flight
  /// results, shut down. run() then returns with drained_early set.
  void request_drain() noexcept;

  /// Provide the autoscaler's growth mechanism: called from the run() loop
  /// thread with the number of workers to start (fork a process, start a
  /// remote ssh job, ...); the new workers connect back like any other.
  /// Without a callback, grow decisions are dropped (retire still works).
  void set_spawn_callback(std::function<void(unsigned)> spawn);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Worker-side connection policy.
struct WorkerConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Non-empty: connect to the master's AF_UNIX socket at this path instead
  /// of host:port (same-host workers; see DispatchConfig::unix_path).
  std::string unix_path;
  unsigned slots = 1;  // parallel experiments in this worker process

  double heartbeat_interval_s = 1.0;
  /// Connect/reconnect budget: attempts per connect() call, with exponential
  /// backoff starting at backoff_s; and how many times a *lost established*
  /// connection may be re-established before the worker gives up.
  unsigned connect_attempts = 20;
  double connect_backoff_s = 0.1;
  unsigned max_reconnects = 3;
  /// Largest frame accepted from the master; must fit the Welcome (config +
  /// checkpoint image).
  std::size_t max_master_frame = std::size_t(1) << 31;
};

/// Run one worker process: connect, register, execute batches until the
/// master sends Shutdown (returns 0), or until the connection/reconnect
/// budget is exhausted (returns nonzero). Never throws.
int run_worker(const WorkerConfig& wcfg);

/// A pool of forked loopback worker processes (the --now-local mode and the
/// chaos tests' crash targets).
class LocalWorkerPool {
 public:
  /// Fork `workers` children, each running run_worker() against
  /// 127.0.0.1:port with `slots` slots, then _exit(). Call before the parent
  /// spawns threads (Master::run is single-threaded, so the natural order —
  /// construct Master, spawn pool, run — is safe). `max_reconnects` is the
  /// per-worker budget for re-establishing a lost connection: the campaign
  /// service leases workers by closing and letting them reconnect, so its
  /// pools need a far larger budget than a one-shot master's.
  static LocalWorkerPool spawn(unsigned workers, std::uint16_t port, unsigned slots,
                               unsigned max_reconnects = 3);

  /// Same, but the children connect over the master's AF_UNIX socket.
  static LocalWorkerPool spawn_unix(unsigned workers, const std::string& path,
                                    unsigned slots, unsigned max_reconnects = 3);

  /// Fork more workers into an existing pool (the autoscaler's growth hook).
  void grow(unsigned workers, std::uint16_t port, unsigned slots,
            unsigned max_reconnects = 3);
  void grow_unix(unsigned workers, const std::string& path, unsigned slots,
                 unsigned max_reconnects = 3);

  LocalWorkerPool() = default;
  LocalWorkerPool(LocalWorkerPool&&) = default;
  LocalWorkerPool& operator=(LocalWorkerPool&&) = default;

  [[nodiscard]] const std::vector<int>& pids() const noexcept { return pids_; }
  /// Send `signo` to worker i (SIGKILL in the chaos tests).
  void kill_worker(std::size_t i, int signo) const;
  /// Reap every child; returns how many exited nonzero or by signal.
  int wait_all();

 private:
  std::vector<int> pids_;
};

/// One-call convenience for `--now-local N`: master plus N forked loopback
/// workers with `slots` slots each, serving `faults` of the calibrated app.
DispatchReport run_campaign_service_local(const CalibratedApp& ca,
                                          const apps::AppScale& scale,
                                          const std::vector<fi::Fault>& faults,
                                          const CampaignConfig& cfg, unsigned workers,
                                          unsigned slots, DispatchConfig dcfg = {});

}  // namespace gemfi::campaign
