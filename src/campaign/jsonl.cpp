#include "campaign/jsonl.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace gemfi::campaign::jsonl {

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

ObjectWriter& ObjectWriter::raw(std::string_view key, std::string_view rendered) {
  if (!body_.empty()) body_ += ',';
  body_ += '"';
  body_ += escape(key);
  body_ += "\":";
  body_ += rendered;
  return *this;
}

ObjectWriter& ObjectWriter::field(std::string_view key, std::string_view value) {
  return raw(key, '"' + escape(value) + '"');
}

ObjectWriter& ObjectWriter::field(std::string_view key, const char* value) {
  return field(key, std::string_view(value));
}

ObjectWriter& ObjectWriter::field(std::string_view key, std::uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(value));
  return raw(key, buf);
}

ObjectWriter& ObjectWriter::field(std::string_view key, double value) {
  // JSON has no nan/inf literals; "%.17g" would emit them verbatim and
  // corrupt the whole record. Non-finite telemetry values become null.
  if (!std::isfinite(value)) return raw(key, "null");
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return raw(key, buf);
}

ObjectWriter& ObjectWriter::field(std::string_view key, bool value) {
  return raw(key, value ? "true" : "false");
}

std::string ObjectWriter::str() const { return '{' + body_ + '}'; }

const Value& Value::at(const std::string& key) const {
  if (kind != Kind::Object) throw std::out_of_range("JSON value is not an object");
  const auto it = object.find(key);
  if (it == object.end()) throw std::out_of_range("missing JSON key: " + key);
  return it->second;
}

bool Value::has(const std::string& key) const {
  return kind == Kind::Object && object.count(key) != 0;
}

const std::string& Value::as_string() const {
  if (kind != Kind::String) throw std::invalid_argument("JSON value is not a string");
  return text;
}

std::uint64_t Value::as_u64() const {
  if (kind != Kind::Number) throw std::invalid_argument("JSON value is not a number");
  return std::strtoull(text.c_str(), nullptr, 10);
}

double Value::as_double() const {
  if (kind != Kind::Number) throw std::invalid_argument("JSON value is not a number");
  return std::strtod(text.c_str(), nullptr);
}

bool Value::as_bool() const {
  if (kind != Kind::Bool) throw std::invalid_argument("JSON value is not a bool");
  return boolean;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value document() {
    Value v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("JSON parse error at offset " + std::to_string(pos_) +
                                ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string_value();
      case 't':
      case 'f': return bool_value();
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Value{};
      default: return number();
    }
  }

  Value object() {
    Value v;
    v.kind = Value::Kind::Object;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      Value key = string_value();
      skip_ws();
      expect(':');
      v.object[key.text] = value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Value array() {
    Value v;
    v.kind = Value::Kind::Array;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  Value string_value() {
    Value v;
    v.kind = Value::Kind::String;
    expect('"');
    for (;;) {
      const char c = peek();
      ++pos_;
      if (c == '"') return v;
      if (c != '\\') {
        v.text += c;
        continue;
      }
      const char esc = peek();
      ++pos_;
      switch (esc) {
        case '"': v.text += '"'; break;
        case '\\': v.text += '\\'; break;
        case '/': v.text += '/'; break;
        case 'b': v.text += '\b'; break;
        case 'f': v.text += '\f'; break;
        case 'n': v.text += '\n'; break;
        case 'r': v.text += '\r'; break;
        case 't': v.text += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= unsigned(h - '0');
            else if (h >= 'a' && h <= 'f') code |= unsigned(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= unsigned(h - 'A' + 10);
            else fail("bad hex digit in \\u escape");
          }
          // Telemetry records only ever escape control characters; encode the
          // code point as UTF-8 without surrogate-pair handling.
          if (code < 0x80) {
            v.text += char(code);
          } else if (code < 0x800) {
            v.text += char(0xc0 | (code >> 6));
            v.text += char(0x80 | (code & 0x3f));
          } else {
            v.text += char(0xe0 | (code >> 12));
            v.text += char(0x80 | ((code >> 6) & 0x3f));
            v.text += char(0x80 | (code & 0x3f));
          }
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  Value bool_value() {
    Value v;
    v.kind = Value::Kind::Bool;
    if (consume_literal("true")) {
      v.boolean = true;
      return v;
    }
    if (consume_literal("false")) {
      v.boolean = false;
      return v;
    }
    fail("bad literal");
  }

  Value number() {
    Value v;
    v.kind = Value::Kind::Number;
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    const auto digits = [&] {
      const std::size_t d0 = pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_])))
        ++pos_;
      if (pos_ == d0) fail("expected digits");
    };
    digits();
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      digits();
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      digits();
    }
    v.text = std::string(text_.substr(start, pos_ - start));
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(std::string_view text) { return Parser(text).document(); }

}  // namespace gemfi::campaign::jsonl
