#include "campaign/analytics/aggregator.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "campaign/jsonl.hpp"

namespace gemfi::campaign {

StopPolicy parse_stop_ci(const std::string& spec) {
  StopPolicy p;
  std::string eps_text = spec;
  std::string conf_text;
  bool has_conf = false;
  if (const auto at = spec.find('@'); at != std::string::npos) {
    eps_text = spec.substr(0, at);
    conf_text = spec.substr(at + 1);
    has_conf = true;  // "EPS@" with nothing after is malformed, not a default
  }
  const auto parse_part = [&](const std::string& text, const char* what) {
    std::size_t used = 0;
    double v = 0.0;
    try {
      v = std::stod(text, &used);
    } catch (const std::exception&) {
      used = 0;
    }
    if (used != text.size() || text.empty())
      throw std::invalid_argument("invalid --stop-ci " + std::string(what) + ": '" +
                                  text + "' (expected EPS or EPS@CONF, e.g. 0.01@0.99)");
    return v;
  };
  p.eps = parse_part(eps_text, "eps");
  if (has_conf) p.confidence = parse_part(conf_text, "confidence");
  if (!(p.eps > 0.0) || p.eps > 0.5)
    throw std::invalid_argument("--stop-ci eps must be in (0, 0.5], got '" + eps_text +
                                "'");
  if (!(p.confidence > 0.5) || !(p.confidence < 1.0))
    throw std::invalid_argument("--stop-ci confidence must be in (0.5, 1), got '" +
                                conf_text + "'");
  return p;
}

fi::FaultModelKind fault_family(const fi::Fault& f) noexcept {
  if (f.location == fi::FaultLocation::Skip || f.location == fi::FaultLocation::Opcode)
    return fi::FaultModelKind::Attack;
  if (f.duty_cycled()) return fi::FaultModelKind::Intermittent;
  if (f.behavior == fi::FaultBehavior::StuckZero ||
      f.behavior == fi::FaultBehavior::StuckOne)
    return fi::FaultModelKind::StuckAt;
  if (f.behavior == fi::FaultBehavior::Burst || f.behavior == fi::FaultBehavior::RandK)
    return fi::FaultModelKind::Burst;
  return fi::FaultModelKind::Transient;
}

Aggregator::Aggregator(StopPolicy policy, std::size_t total_experiments)
    : policy_(policy), total_(total_experiments) {}

bool Aggregator::add(const ExperimentRecord& rec) {
  const auto outcome = static_cast<unsigned>(rec.result.classification.outcome);
  ++n_;
  if (outcome < apps::kNumOutcomes) ++outcome_counts_[outcome];
  const auto loc = static_cast<unsigned>(rec.result.fault.location);
  if (loc < fi::kNumFaultLocations) ++location_counts_[loc];
  ++family_counts_[static_cast<unsigned>(fault_family(rec.result.fault))];
  const double tf = std::clamp(rec.result.time_fraction, 0.0, 1.0);
  const auto bin = std::min<unsigned>(kNumTimingBins - 1,
                                      static_cast<unsigned>(tf * kNumTimingBins));
  ++timing_counts_[bin];

  // Advance the contiguous index-ordered prefix through the reorder buffer
  // and re-test the stop rule once per newly absorbed prefix element. The
  // rule is tested at every prefix length (not just the final one), so the
  // first satisfying k is found even when one arriving record unlocks a
  // whole buffered run.
  if (stop_index_.has_value()) return false;  // draining: prefix is frozen
  pending_.emplace(rec.index, static_cast<std::uint8_t>(outcome));
  evaluate_prefix_rule();
  return stop_index_.has_value();
}

void Aggregator::evaluate_prefix_rule() {
  for (auto it = pending_.begin(); it != pending_.end() && it->first == prefix_n_;
       it = pending_.erase(it)) {
    if (it->second < apps::kNumOutcomes) ++prefix_counts_[it->second];
    ++prefix_n_;
    if (policy_.enabled() && prefix_rule_holds()) {
      // Freeze the prefix at the first satisfying k: one arriving record can
      // unlock a whole buffered run, and absorbing past k would make the
      // stop-prefix counts depend on arrival order. prefix_counts_ must stay
      // exactly the counts over [0, stop_index_).
      stop_index_ = prefix_n_;
      pending_.erase(it);
      return;
    }
  }
}

bool Aggregator::prefix_rule_holds() const {
  if (prefix_n_ < policy_.min_n) return false;
  // Finite-population correction: the campaign plan is the population and the
  // index prefix samples it without replacement, so the standard error of
  // "how far can the full campaign's proportion still be from the prefix's"
  // shrinks by sqrt((N-n)/(N-1)). With an unknown population (total_ == 0)
  // the factor is 1 and the rule is the classical infinite-population test.
  double fpc = 1.0;
  if (total_ > 1 && prefix_n_ <= total_) {
    fpc = std::sqrt(double(total_ - prefix_n_) / double(total_ - 1));
  }
  for (unsigned o = 0; o < apps::kNumOutcomes; ++o) {
    const auto ci =
        util::wilson_interval(prefix_counts_[o], prefix_n_, policy_.confidence);
    if (ci.half_width() * fpc >= policy_.eps) return false;
  }
  return true;
}

util::ProportionInterval Aggregator::wilson(apps::Outcome o) const {
  return util::wilson_interval(outcome_counts_[static_cast<unsigned>(o)], n_,
                               policy_.confidence);
}

util::ProportionInterval Aggregator::clopper_pearson(apps::Outcome o) const {
  return util::clopper_pearson_interval(outcome_counts_[static_cast<unsigned>(o)], n_,
                                        policy_.confidence);
}

double Aggregator::max_half_width() const {
  double w = n_ == 0 ? 0.5 : 0.0;
  for (unsigned o = 0; o < apps::kNumOutcomes; ++o)
    w = std::max(w, wilson(apps::Outcome(o)).half_width());
  return w;
}

namespace {

// Deterministic double rendering matching jsonl::ObjectWriter ("%.17g",
// non-finite -> null), reused for the nested summary blocks ObjectWriter's
// flat API cannot express.
std::string json_double(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

std::string Aggregator::summary_json(std::string_view kind) const {
  // Over the stop prefix when the rule fired (the deterministic view), else
  // over everything seen.
  const bool stopped = stop_index_.has_value();
  const std::uint64_t n = stopped ? *stop_index_ : n_;
  const auto& counts = stopped ? prefix_counts_ : outcome_counts_;

  std::string out = "{\"type\":\"";
  out += jsonl::escape(kind);
  out += "\",\"n\":" + std::to_string(n);
  out += ",\"total\":" + std::to_string(total_);
  out += ",\"stopped_early\":";
  out += stopped ? "true" : "false";
  if (stopped) out += ",\"stop_index\":" + std::to_string(*stop_index_);
  out += ",\"eps\":" + json_double(policy_.eps);
  out += ",\"confidence\":" + json_double(policy_.confidence);

  out += ",\"outcomes\":{";
  for (unsigned o = 0; o < apps::kNumOutcomes; ++o) {
    const std::uint64_t k = counts[o];
    const auto wi = util::wilson_interval(k, n, policy_.confidence);
    const auto cp = util::clopper_pearson_interval(k, n, policy_.confidence);
    if (o) out += ',';
    out += '"';
    out += apps::outcome_name(apps::Outcome(o));
    out += "\":{\"count\":" + std::to_string(k);
    out += ",\"fraction\":" + json_double(n ? double(k) / double(n) : 0.0);
    out += ",\"wilson_lo\":" + json_double(wi.lo);
    out += ",\"wilson_hi\":" + json_double(wi.hi);
    out += ",\"cp_lo\":" + json_double(cp.lo);
    out += ",\"cp_hi\":" + json_double(cp.hi);
    out += '}';
  }
  out += '}';

  // The histogram marginals are order-independent counts over everything
  // added, so they are deterministic too once the campaign's record set is
  // fixed — which the stop prefix view does not fix. To keep the whole
  // summary byte-identical across schedulings they are also restricted to
  // nothing beyond what every run must have seen: emitted only in the
  // non-stopped (complete-set) summary.
  if (!stopped) {
    out += ",\"locations\":{";
    for (unsigned l = 0; l < fi::kNumFaultLocations; ++l) {
      if (l) out += ',';
      out += '"';
      out += fi::fault_location_name(fi::FaultLocation(l));
      out += "\":" + std::to_string(location_counts_[l]);
    }
    out += "},\"families\":{";
    for (unsigned f = 0; f < fi::kNumFaultModelKinds; ++f) {
      if (f) out += ',';
      out += '"';
      out += fi::fault_model_kind_name(fi::FaultModelKind(f));
      out += "\":" + std::to_string(family_counts_[f]);
    }
    out += "},\"timing_deciles\":[";
    for (unsigned b = 0; b < kNumTimingBins; ++b) {
      if (b) out += ',';
      out += std::to_string(timing_counts_[b]);
    }
    out += ']';
  }
  out += '}';
  return out;
}

}  // namespace gemfi::campaign
