// Streaming campaign analytics (the "campaign cost" lens of ZOFI/CHAOS,
// PAPERS.md): instead of writing JSONL nobody reads until the campaign
// joins, the Aggregator consumes each ExperimentRecord as the master/service
// receives it and maintains, online:
//
//  * outcome counts and binomial confidence intervals (Wilson + exact
//    Clopper-Pearson) per outcome class;
//  * per-fault-location, per-fault-family and per-injection-time-decile
//    histograms (the marginals behind Figs. 4-6);
//  * a sequential early-stop decision: once every outcome proportion's
//    Wilson CI half-width is below the policy's eps at the policy's
//    confidence, the remaining experiments cannot change the answer beyond
//    the stated error bound — the campaign can stop and save the fleet.
//
// Determinism of the stop decision is the load-bearing property. Results
// arrive in nondeterministic order (workers race), so the stop rule is NOT
// evaluated on arrival order: records are run through a reorder buffer and
// the rule is tested only on ever-growing index-ordered prefixes [0, k).
// The first k satisfying the rule is a pure function of the fault list, so
// the stop index and the stop-time summary are byte-identical across worker
// counts, schedulings, transports and --replay.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "campaign/observer.hpp"
#include "campaign/runner.hpp"
#include "util/stats.hpp"

namespace gemfi::campaign {

/// Sequential early-stop rule: stop once every outcome proportion's Wilson
/// interval half-width is below `eps` at `confidence`, evaluated on
/// index-ordered prefixes of at least `min_n` results. eps == 0 disables
/// stopping (the aggregator still aggregates).
///
/// When the campaign's total experiment count is known (total_experiments
/// > 0), the half-width carries the finite-population correction
/// sqrt((N-n)/(N-1)): the campaign plan *is* the population, and running its
/// seeded index prefix is sampling without replacement, so the rule certifies
/// agreement with what the full planned campaign would report — the
/// remaining experiments cannot move any outcome proportion beyond eps at
/// the stated confidence. With total_experiments == 0 the correction
/// vanishes and the rule is the classical infinite-population one.
struct StopPolicy {
  double eps = 0.0;
  double confidence = 0.99;
  std::uint64_t min_n = 64;

  [[nodiscard]] bool enabled() const noexcept { return eps > 0.0; }
};

/// Parse the CLI form "EPS@CONF" (e.g. "0.01@0.99"); a bare "EPS" keeps the
/// default 99% confidence. Throws std::invalid_argument naming the flag on
/// malformed input, eps outside (0, 0.5] or confidence outside (0.5, 1).
StopPolicy parse_stop_ci(const std::string& spec);

/// Infer the fault-model family a concrete Fault belongs to (the inverse of
/// random_model_fault's synthesis): attacks by location, intermittents by
/// duty cycling, stuck-ats by sticky mask behavior, bursts by multi-bit
/// behavior, everything else transient SEU.
fi::FaultModelKind fault_family(const fi::Fault& f) noexcept;

inline constexpr unsigned kNumTimingBins = 10;  // deciles of time_fraction

/// Online campaign statistics + sequential stop rule. Thread-safe as a
/// CampaignObserver (per-call mutex); the direct add()/query API is NOT
/// synchronized and is meant for single-threaded consumers (the Master's
/// poll loop, the service, tests).
class Aggregator final : public CampaignObserver {
 public:
  explicit Aggregator(StopPolicy policy = {}, std::size_t total_experiments = 0);

  /// Consume one result (any arrival order; duplicate indices are the
  /// caller's problem — the dispatch layer dedups before observing).
  /// Returns true if this record newly satisfied the stop rule.
  bool add(const ExperimentRecord& rec);

  // --- arrival-order totals (order-independent: counts over the set seen) ---
  [[nodiscard]] std::uint64_t n() const noexcept { return n_; }
  [[nodiscard]] const std::array<std::uint64_t, apps::kNumOutcomes>& outcome_counts()
      const noexcept {
    return outcome_counts_;
  }
  [[nodiscard]] const std::array<std::uint64_t, fi::kNumFaultLocations>&
  location_counts() const noexcept {
    return location_counts_;
  }
  [[nodiscard]] const std::array<std::uint64_t, fi::kNumFaultModelKinds>&
  family_counts() const noexcept {
    return family_counts_;
  }
  [[nodiscard]] const std::array<std::uint64_t, kNumTimingBins>& timing_counts()
      const noexcept {
    return timing_counts_;
  }

  [[nodiscard]] util::ProportionInterval wilson(apps::Outcome o) const;
  [[nodiscard]] util::ProportionInterval clopper_pearson(apps::Outcome o) const;

  /// Widest Wilson half-width across all outcome classes over everything
  /// seen so far (the quantity the stop rule drives to eps).
  [[nodiscard]] double max_half_width() const;

  // --- sequential stop rule (index-ordered prefix; deterministic) ---
  [[nodiscard]] const StopPolicy& policy() const noexcept { return policy_; }
  [[nodiscard]] bool should_stop() const noexcept { return stop_index_.has_value(); }
  /// Prefix length [0, k) at which the rule first held; meaningful only
  /// when should_stop().
  [[nodiscard]] std::uint64_t stop_index() const noexcept {
    return stop_index_.value_or(0);
  }
  /// Length of the contiguous index-ordered prefix received so far.
  [[nodiscard]] std::uint64_t prefix_n() const noexcept { return prefix_n_; }
  /// Outcome counts over the contiguous prefix [0, prefix_n()) — frozen at
  /// [0, stop_index()) once the rule fires.
  [[nodiscard]] const std::array<std::uint64_t, apps::kNumOutcomes>& prefix_counts()
      const noexcept {
    return prefix_counts_;
  }

  /// One deterministic single-line JSON summary record. When the rule fired,
  /// the per-outcome block is computed over the stop prefix [0, stop_index)
  /// — byte-identical across schedulings; otherwise over everything seen.
  /// `kind` is the record's "type" field (e.g. "stopped_early", "summary").
  [[nodiscard]] std::string summary_json(std::string_view kind) const;

  // CampaignObserver adapter (locks; usable in a TeeObserver chain).
  void on_experiment(const ExperimentRecord& rec) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    add(rec);
  }

 private:
  void evaluate_prefix_rule();
  [[nodiscard]] bool prefix_rule_holds() const;

  StopPolicy policy_;
  std::size_t total_ = 0;

  std::uint64_t n_ = 0;
  std::array<std::uint64_t, apps::kNumOutcomes> outcome_counts_{};
  std::array<std::uint64_t, fi::kNumFaultLocations> location_counts_{};
  std::array<std::uint64_t, fi::kNumFaultModelKinds> family_counts_{};
  std::array<std::uint64_t, kNumTimingBins> timing_counts_{};

  // Reorder buffer: outcomes of records whose index is beyond the contiguous
  // prefix. Bounded by the dispatch in-flight window (slots x pipeline
  // depth), so it stays tiny even on wide fleets.
  std::map<std::uint64_t, std::uint8_t> pending_;
  std::uint64_t prefix_n_ = 0;
  std::array<std::uint64_t, apps::kNumOutcomes> prefix_counts_{};
  std::optional<std::uint64_t> stop_index_;

  std::mutex mutex_;  // observer adapter only
};

}  // namespace gemfi::campaign
