#include "campaign/analytics/colstore.hpp"

#include <algorithm>
#include <cstring>
#include <iterator>

#include "campaign/analytics/aggregator.hpp"
#include "util/bytesio.hpp"

namespace gemfi::campaign {

namespace {

constexpr char kHeaderMagic[4] = {'G', 'F', 'C', 'S'};
constexpr char kTrailerMagic[4] = {'G', 'F', 'C', 'E'};
constexpr std::size_t kHeaderSize = 8;   // magic + u32 version
constexpr std::size_t kTrailerSize = 12;  // u32 footer_len + u32 crc + magic

// Minimal byte width that can hold `maxv` (1, 2, 4 or 8).
std::uint8_t width_for(std::uint64_t maxv) {
  if (maxv <= 0xffu) return 1;
  if (maxv <= 0xffffu) return 2;
  if (maxv <= 0xffffffffu) return 4;
  return 8;
}

// Packed integer column: u8 width, then rows x width little-endian bytes.
template <typename Get>
void put_packed(util::ByteWriter& w, const std::vector<ColstoreRow>& rows, Get get) {
  std::uint64_t maxv = 0;
  for (const auto& r : rows) maxv = std::max(maxv, static_cast<std::uint64_t>(get(r)));
  const std::uint8_t width = width_for(maxv);
  w.put_u8(width);
  for (const auto& r : rows) {
    const std::uint64_t v = static_cast<std::uint64_t>(get(r));
    for (unsigned b = 0; b < width; ++b) w.put_u8(std::uint8_t(v >> (8 * b)));
  }
}

template <typename Set>
void get_packed(util::ByteReader& r, std::vector<ColstoreRow>& rows, Set set) {
  const std::uint8_t width = r.get_u8();
  if (width != 1 && width != 2 && width != 4 && width != 8)
    throw util::DeserializeError("colstore: bad packed column width " +
                                 std::to_string(width));
  for (auto& row : rows) {
    std::uint64_t v = 0;
    for (unsigned b = 0; b < width; ++b)
      v |= std::uint64_t(r.get_u8()) << (8 * b);
    set(row, v);
  }
}

void put_bools(util::ByteWriter& w, const std::vector<ColstoreRow>& rows) {
  std::uint8_t byte = 0;
  unsigned bit = 0;
  for (const auto& r : rows) {
    if (r.applied) byte |= std::uint8_t(1u << bit);
    if (++bit == 8) {
      w.put_u8(byte);
      byte = 0;
      bit = 0;
    }
  }
  if (bit != 0) w.put_u8(byte);
}

void get_bools(util::ByteReader& r, std::vector<ColstoreRow>& rows) {
  std::uint8_t byte = 0;
  unsigned bit = 8;
  for (auto& row : rows) {
    if (bit == 8) {
      byte = r.get_u8();
      bit = 0;
    }
    row.applied = (byte >> bit) & 1u;
    ++bit;
  }
}

template <typename Get>
void put_f64s(util::ByteWriter& w, const std::vector<ColstoreRow>& rows, Get get) {
  for (const auto& r : rows) w.put_f64(get(r));
}

template <typename Set>
void get_f64s(util::ByteReader& r, std::vector<ColstoreRow>& rows, Set set) {
  for (auto& row : rows) set(row, r.get_f64());
}

std::vector<std::uint8_t> encode_group(const std::vector<ColstoreRow>& rows) {
  util::ByteWriter w;
  w.put_u32(std::uint32_t(rows.size()));
  put_packed(w, rows, [](const ColstoreRow& r) { return r.index; });
  put_packed(w, rows, [](const ColstoreRow& r) { return r.worker; });
  put_packed(w, rows, [](const ColstoreRow& r) { return r.seed; });
  put_packed(w, rows, [](const ColstoreRow& r) { return r.outcome; });
  put_packed(w, rows, [](const ColstoreRow& r) { return r.location; });
  put_packed(w, rows, [](const ColstoreRow& r) { return r.behavior; });
  put_packed(w, rows, [](const ColstoreRow& r) { return r.family; });
  put_bools(w, rows);
  put_packed(w, rows, [](const ColstoreRow& r) { return r.retries; });
  put_f64s(w, rows, [](const ColstoreRow& r) { return r.time_fraction; });
  put_f64s(w, rows, [](const ColstoreRow& r) { return r.metric; });
  put_packed(w, rows, [](const ColstoreRow& r) { return r.sim_ticks; });
  return w.take();
}

void decode_group(util::ByteReader& r, std::vector<ColstoreRow>& out,
                  std::uint32_t expected_rows) {
  const std::uint32_t n = r.get_u32();
  if (n != expected_rows)
    throw util::DeserializeError("colstore: group row count mismatch");
  std::vector<ColstoreRow> rows(n);
  get_packed(r, rows, [](ColstoreRow& row, std::uint64_t v) { row.index = v; });
  get_packed(r, rows,
             [](ColstoreRow& row, std::uint64_t v) { row.worker = std::uint32_t(v); });
  get_packed(r, rows, [](ColstoreRow& row, std::uint64_t v) { row.seed = v; });
  get_packed(r, rows,
             [](ColstoreRow& row, std::uint64_t v) { row.outcome = std::uint8_t(v); });
  get_packed(r, rows,
             [](ColstoreRow& row, std::uint64_t v) { row.location = std::uint8_t(v); });
  get_packed(r, rows,
             [](ColstoreRow& row, std::uint64_t v) { row.behavior = std::uint8_t(v); });
  get_packed(r, rows,
             [](ColstoreRow& row, std::uint64_t v) { row.family = std::uint8_t(v); });
  get_bools(r, rows);
  get_packed(r, rows,
             [](ColstoreRow& row, std::uint64_t v) { row.retries = std::uint32_t(v); });
  get_f64s(r, rows, [](ColstoreRow& row, double v) { row.time_fraction = v; });
  get_f64s(r, rows, [](ColstoreRow& row, double v) { row.metric = v; });
  get_packed(r, rows, [](ColstoreRow& row, std::uint64_t v) { row.sim_ticks = v; });
  out.insert(out.end(), rows.begin(), rows.end());
}

void put_dictionary(util::ByteWriter& w, const std::vector<std::string>& names) {
  w.put_u32(std::uint32_t(names.size()));
  for (const auto& s : names) w.put_string(s);
}

std::vector<std::string> get_dictionary(util::ByteReader& r) {
  const std::uint32_t n = r.get_u32();
  if (n > 256) throw util::DeserializeError("colstore: oversized dictionary");
  std::vector<std::string> names;
  names.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) names.push_back(r.get_string());
  return names;
}

template <typename Name>
std::vector<std::string> enum_names(unsigned count, Name name) {
  std::vector<std::string> out;
  out.reserve(count);
  for (unsigned i = 0; i < count; ++i) out.emplace_back(name(i));
  return out;
}

}  // namespace

ColstoreRow ColstoreRow::from_record(const ExperimentRecord& rec) {
  ColstoreRow row;
  row.index = rec.index;
  row.worker = rec.worker;
  row.seed = rec.seed;
  row.outcome = std::uint8_t(rec.result.classification.outcome);
  row.location = std::uint8_t(rec.result.fault.location);
  row.behavior = std::uint8_t(rec.result.fault.behavior);
  row.family = std::uint8_t(fault_family(rec.result.fault));
  row.applied = rec.result.fault_applied;
  row.retries = rec.result.retries;
  row.time_fraction = rec.result.time_fraction;
  row.metric = rec.result.classification.metric;
  row.sim_ticks = rec.result.sim_ticks;
  return row;
}

ColstoreWriter::ColstoreWriter(const std::string& path, std::uint32_t rows_per_group)
    : path_(path), rows_per_group_(std::max(1u, rows_per_group)) {
  os_.open(path, std::ios::binary | std::ios::trunc);
  if (!os_) throw std::runtime_error("colstore: cannot open " + path + " for writing");
  util::ByteWriter w;
  w.put_bytes(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(kHeaderMagic), 4));
  w.put_u32(kColstoreVersion);
  os_.write(reinterpret_cast<const char*>(w.bytes().data()),
            std::streamsize(w.size()));
  offset_ = w.size();
}

ColstoreWriter::~ColstoreWriter() {
  try {
    finish();
  } catch (...) {
  }
}

void ColstoreWriter::append(const ColstoreRow& row) {
  if (finished_) throw std::logic_error("colstore: append after finish");
  group_.push_back(row);
  ++total_rows_;
  if (group_.size() >= rows_per_group_) flush_group();
}

void ColstoreWriter::flush_group() {
  if (group_.empty()) return;
  const auto bytes = encode_group(group_);
  groups_.push_back({offset_, std::uint32_t(group_.size())});
  os_.write(reinterpret_cast<const char*>(bytes.data()), std::streamsize(bytes.size()));
  offset_ += bytes.size();
  group_.clear();
}

void ColstoreWriter::finish() {
  if (finished_) return;
  flush_group();

  util::ByteWriter footer;
  footer.put_u32(std::uint32_t(groups_.size()));
  for (const auto& g : groups_) {
    footer.put_u64(g.offset);
    footer.put_u32(g.rows);
  }
  footer.put_u64(total_rows_);
  put_dictionary(footer, enum_names(apps::kNumOutcomes, [](unsigned i) {
                   return apps::outcome_name(apps::Outcome(i));
                 }));
  put_dictionary(footer, enum_names(fi::kNumFaultLocations, [](unsigned i) {
                   return fi::fault_location_name(fi::FaultLocation(i));
                 }));
  put_dictionary(footer, enum_names(fi::kNumFaultBehaviors, [](unsigned i) {
                   return fi::fault_behavior_name(fi::FaultBehavior(i));
                 }));
  put_dictionary(footer, enum_names(fi::kNumFaultModelKinds, [](unsigned i) {
                   return fi::fault_model_kind_name(fi::FaultModelKind(i));
                 }));

  util::ByteWriter trailer;
  trailer.put_u32(std::uint32_t(footer.size()));
  trailer.put_u32(util::crc32(footer.bytes()));
  trailer.put_bytes(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(kTrailerMagic), 4));

  os_.write(reinterpret_cast<const char*>(footer.bytes().data()),
            std::streamsize(footer.size()));
  os_.write(reinterpret_cast<const char*>(trailer.bytes().data()),
            std::streamsize(trailer.size()));
  os_.flush();
  if (!os_) throw std::runtime_error("colstore: write failed for " + path_);
  os_.close();
  finished_ = true;
}

ColstoreFile decode_colstore(std::span<const std::uint8_t> image) {
  if (image.size() < kHeaderSize + kTrailerSize)
    throw util::DeserializeError("colstore: file too short");
  if (std::memcmp(image.data(), kHeaderMagic, 4) != 0)
    throw util::DeserializeError("colstore: bad header magic");
  {
    util::ByteReader hdr(image.subspan(4, 4));
    const std::uint32_t version = hdr.get_u32();
    if (version != kColstoreVersion)
      throw util::DeserializeError("colstore: unsupported version " +
                                   std::to_string(version));
  }
  const auto trailer = image.subspan(image.size() - kTrailerSize);
  if (std::memcmp(trailer.data() + 8, kTrailerMagic, 4) != 0)
    throw util::DeserializeError("colstore: bad trailer magic (truncated file?)");
  util::ByteReader tr(trailer.first(8));
  const std::uint32_t footer_len = tr.get_u32();
  const std::uint32_t footer_crc = tr.get_u32();
  if (footer_len > image.size() - kHeaderSize - kTrailerSize)
    throw util::DeserializeError("colstore: footer length out of bounds");
  const auto footer =
      image.subspan(image.size() - kTrailerSize - footer_len, footer_len);
  if (util::crc32(footer) != footer_crc)
    throw util::DeserializeError("colstore: footer CRC mismatch");

  ColstoreFile file;
  util::ByteReader fr(footer);
  const std::uint32_t group_count = fr.get_u32();
  std::vector<std::pair<std::uint64_t, std::uint32_t>> groups;
  groups.reserve(group_count);
  for (std::uint32_t i = 0; i < group_count; ++i) {
    const std::uint64_t off = fr.get_u64();
    const std::uint32_t rows = fr.get_u32();
    groups.emplace_back(off, rows);
  }
  const std::uint64_t total_rows = fr.get_u64();
  file.outcome_names = get_dictionary(fr);
  file.location_names = get_dictionary(fr);
  file.behavior_names = get_dictionary(fr);
  file.family_names = get_dictionary(fr);
  if (!fr.at_end()) throw util::DeserializeError("colstore: trailing footer bytes");

  const std::size_t data_end = image.size() - kTrailerSize - footer_len;
  file.rows.reserve(total_rows);
  for (const auto& [off, rows] : groups) {
    if (off < kHeaderSize || off >= data_end)
      throw util::DeserializeError("colstore: group offset out of bounds");
    util::ByteReader gr(image.subspan(off, data_end - off));
    decode_group(gr, file.rows, rows);
  }
  if (file.rows.size() != total_rows)
    throw util::DeserializeError("colstore: row count mismatch");
  return file;
}

ColstoreFile read_colstore(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw util::DeserializeError("colstore: cannot open " + path);
  std::vector<std::uint8_t> image((std::istreambuf_iterator<char>(is)),
                                  std::istreambuf_iterator<char>());
  return decode_colstore(image);
}

}  // namespace gemfi::campaign
