// Compact columnar result store ("GFCS"), written alongside the JSONL
// telemetry stream. JSONL is the replayable source of truth; the colstore is
// the analytic view: multi-million-record campaigns compress to a few bytes
// per experiment and slice in milliseconds from `gemfi_query`, without
// re-parsing JSON.
//
// Layout (all little-endian, util::ByteWriter primitives):
//
//   header   "GFCS" magic + u32 format version
//   groups   row groups of up to `rows_per_group` records; each column of a
//            group is stored contiguously ("per-field packed columns"):
//            integer columns as minimal-byte-width packed arrays (1/2/4/8,
//            chosen per column per group), enum columns as u8 dictionary
//            codes, bools bit-packed, doubles as raw f64
//   footer   group directory (offset + row count per group), total rows,
//            and the enum dictionaries (code -> name), making the file
//            self-describing
//   trailer  u32 footer length + u32 CRC32 of the footer bytes + "GFCE"
//
// The reader seeks the trailer first: a truncated, torn or corrupted file
// fails the magic/CRC/bounds checks with util::DeserializeError instead of
// decoding garbage (the same contract as checkpoint streams).
#pragma once

#include <cstdint>
#include <fstream>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "campaign/observer.hpp"
#include "campaign/runner.hpp"

namespace gemfi::campaign {

inline constexpr std::uint32_t kColstoreVersion = 1;

/// One experiment, projected onto the columns worth slicing by.
struct ColstoreRow {
  std::uint64_t index = 0;
  std::uint32_t worker = 0;
  std::uint64_t seed = 0;
  std::uint8_t outcome = 0;   // apps::Outcome code
  std::uint8_t location = 0;  // fi::FaultLocation code
  std::uint8_t behavior = 0;  // fi::FaultBehavior code
  std::uint8_t family = 0;    // fi::FaultModelKind code (fault_family())
  bool applied = false;
  std::uint32_t retries = 0;
  double time_fraction = 0.0;
  double metric = 0.0;
  std::uint64_t sim_ticks = 0;

  [[nodiscard]] static ColstoreRow from_record(const ExperimentRecord& rec);
};

/// Streaming writer: append rows, then finish(). finish() is idempotent and
/// also runs from the destructor (best-effort, errors swallowed there —
/// call finish() explicitly when you need the error).
class ColstoreWriter {
 public:
  explicit ColstoreWriter(const std::string& path, std::uint32_t rows_per_group = 4096);
  ~ColstoreWriter();

  ColstoreWriter(const ColstoreWriter&) = delete;
  ColstoreWriter& operator=(const ColstoreWriter&) = delete;

  void append(const ColstoreRow& row);
  /// Flush the open group, write footer + trailer, close the file.
  void finish();

  [[nodiscard]] std::uint64_t rows_written() const noexcept { return total_rows_; }

 private:
  void flush_group();

  std::ofstream os_;
  std::string path_;
  std::uint32_t rows_per_group_;
  std::vector<ColstoreRow> group_;
  struct GroupEntry {
    std::uint64_t offset;
    std::uint32_t rows;
  };
  std::vector<GroupEntry> groups_;
  std::uint64_t offset_ = 0;
  std::uint64_t total_rows_ = 0;
  bool finished_ = false;
};

/// The parsed store: every row plus the enum dictionaries from the footer.
struct ColstoreFile {
  std::vector<ColstoreRow> rows;
  std::vector<std::string> outcome_names;
  std::vector<std::string> location_names;
  std::vector<std::string> behavior_names;
  std::vector<std::string> family_names;
};

/// Read and fully validate a colstore file. Throws util::DeserializeError on
/// truncation, bad magic, version or CRC mismatch, or malformed columns.
ColstoreFile read_colstore(const std::string& path);

/// Decode from an in-memory image (fuzz tests, artifact validation).
ColstoreFile decode_colstore(std::span<const std::uint8_t> image);

/// CampaignObserver adapter: one row per experiment record. Call finish()
/// (or let the campaign CLI do it) after the campaign joins.
class ColstoreSink final : public CampaignObserver {
 public:
  explicit ColstoreSink(const std::string& path) : writer_(path) {}

  void on_experiment(const ExperimentRecord& rec) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    writer_.append(ColstoreRow::from_record(rec));
  }

  void finish() {
    const std::lock_guard<std::mutex> lock(mutex_);
    writer_.finish();
  }
  [[nodiscard]] std::uint64_t rows_written() const noexcept {
    return writer_.rows_written();
  }

 private:
  std::mutex mutex_;
  ColstoreWriter writer_;
};

}  // namespace gemfi::campaign
