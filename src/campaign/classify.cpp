#include "campaign/classify.hpp"

namespace gemfi::campaign {

namespace {

/// Did a deliberate attack fault (instruction skip / opcode corruption)
/// actually land in this run?
bool attack_applied(const fi::FaultManager& fm) noexcept {
  for (const auto& fs : fm.states()) {
    const auto loc = fs.fault.location;
    if (fs.applied > 0 && (loc == fi::FaultLocation::Skip ||
                           loc == fi::FaultLocation::Opcode))
      return true;
  }
  return false;
}

}  // namespace

Classification classify(const apps::App& app, const sim::RunResult& rr,
                        const fi::FaultManager& fm, const std::string& output) {
  Classification c;
  if (rr.reason == sim::ExitReason::Watchdog || rr.reason == sim::ExitReason::Deadline) {
    // A run cut off by the tick watchdog or the wall-clock deadline never
    // terminated on its own: report it as Timeout, not Crashed, so livelocks
    // don't silently inflate the crash statistics (the paper folds the two).
    c.outcome = apps::Outcome::Timeout;
    return c;
  }
  if (rr.reason == sim::ExitReason::Crashed) {
    c.outcome = apps::Outcome::Crashed;
    return c;
  }
  if (app.outputs_strictly_equal(output)) {
    c.outcome = fm.any_propagated() ? apps::Outcome::StrictlyCorrect
                                    : apps::Outcome::NonPropagated;
    return c;
  }
  // A normally-terminating run whose output diverged under an applied
  // deliberate fault is the attacker's success case — report it as such
  // rather than folding it into the accidental Correct/SDC classes.
  if (attack_applied(fm)) {
    if (app.acceptable) app.acceptable(output, c.metric);  // still report quality
    c.outcome = apps::Outcome::AttackEffective;
    return c;
  }
  c.outcome = app.acceptable && app.acceptable(output, c.metric) ? apps::Outcome::Correct
                                                                 : apps::Outcome::SDC;
  return c;
}

}  // namespace gemfi::campaign
