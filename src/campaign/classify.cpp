#include "campaign/classify.hpp"

namespace gemfi::campaign {

Classification classify(const apps::App& app, const sim::RunResult& rr,
                        const fi::FaultManager& fm, const std::string& output) {
  Classification c;
  if (rr.reason == sim::ExitReason::Crashed || rr.reason == sim::ExitReason::Watchdog) {
    c.outcome = apps::Outcome::Crashed;
    return c;
  }
  if (app.outputs_strictly_equal(output)) {
    c.outcome = fm.any_propagated() ? apps::Outcome::StrictlyCorrect
                                    : apps::Outcome::NonPropagated;
    return c;
  }
  c.outcome = app.acceptable && app.acceptable(output, c.metric) ? apps::Outcome::Correct
                                                                 : apps::Outcome::SDC;
  return c;
}

}  // namespace gemfi::campaign
