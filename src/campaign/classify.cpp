#include "campaign/classify.hpp"

namespace gemfi::campaign {

namespace {

/// Did a deliberate attack fault (instruction skip / opcode corruption)
/// actually land in this run?
bool attack_applied(const fi::FaultManager& fm) noexcept {
  for (const auto& fs : fm.states()) {
    const auto loc = fs.fault.location;
    if (fs.applied > 0 && (loc == fi::FaultLocation::Skip ||
                           loc == fi::FaultLocation::Opcode))
      return true;
  }
  return false;
}

}  // namespace

Classification classify(const apps::App& app, const sim::RunResult& rr,
                        const fi::FaultManager& fm, const std::string& output) {
  Classification c;
  if (rr.reason == sim::ExitReason::Watchdog || rr.reason == sim::ExitReason::Deadline) {
    // A run cut off by the tick watchdog or the wall-clock deadline never
    // terminated on its own: report it as Timeout, not Crashed, so livelocks
    // don't silently inflate the crash statistics (the paper folds the two).
    c.outcome = apps::Outcome::Timeout;
    return c;
  }
  if (rr.reason == sim::ExitReason::Crashed) {
    c.outcome = apps::Outcome::Crashed;
    return c;
  }
  if (app.outputs_strictly_equal(output)) {
    c.outcome = fm.any_propagated() ? apps::Outcome::StrictlyCorrect
                                    : apps::Outcome::NonPropagated;
    return c;
  }
  // A normally-terminating run whose output diverged under an applied
  // deliberate fault is the attacker's success case — report it as such
  // rather than folding it into the accidental Correct/SDC classes.
  if (attack_applied(fm)) {
    if (app.acceptable) app.acceptable(output, c.metric);  // still report quality
    c.outcome = apps::Outcome::AttackEffective;
    return c;
  }
  c.outcome = app.acceptable && app.acceptable(output, c.metric) ? apps::Outcome::Correct
                                                                 : apps::Outcome::SDC;
  return c;
}

const char* syscall_outcome_name(SyscallOutcome o) noexcept {
  switch (o) {
    case SyscallOutcome::None: return "none";
    case SyscallOutcome::MaskedByHandler: return "masked-by-handler";
    case SyscallOutcome::Cascade: return "cascade";
    case SyscallOutcome::UnhandledError: return "unhandled-error";
  }
  return "?";
}

SyscallClassification classify_syscalls(
    const std::vector<std::pair<std::uint64_t, os::SyscallTraceEntry>>& trace,
    bool unhandled) {
  SyscallClassification c;
  // Cascade length is measured per thread — a failure can only propagate
  // through the state of the thread that saw it — and the run reports the
  // longest chain. The trace is thread-major, so one pass with a reset at
  // each tid boundary suffices.
  std::uint64_t cur_tid = ~0ull;
  bool seen_injected = false;  // on the current thread
  unsigned chain = 0;
  const auto flush = [&] {
    if (chain > c.cascade_len) c.cascade_len = chain;
    chain = 0;
    seen_injected = false;
  };
  for (const auto& [tid, e] : trace) {
    if (tid != cur_tid) {
      flush();
      cur_tid = tid;
    }
    if (e.injected) {
      c.injected = true;
      if (e.err != 0 &&
          !os::errno_realistic(static_cast<os::Sysno>(e.sysno),
                               std::uint16_t(e.err)))
        c.unrealistic = true;
      // Only the first injected call starts the chain; later injected calls
      // on the same thread are injector activity, not propagation.
      seen_injected = true;
    } else if (seen_injected && e.err != 0) {
      ++chain;
    }
  }
  flush();

  if (!c.injected) return c;  // None (cascade_len stays 0 by construction)
  if (unhandled)
    c.outcome = SyscallOutcome::UnhandledError;
  else if (c.cascade_len >= 1)
    c.outcome = SyscallOutcome::Cascade;
  else
    c.outcome = SyscallOutcome::MaskedByHandler;
  return c;
}

}  // namespace gemfi::campaign
