// The guest-visible syscall surface of the lightweight in-simulator kernel.
//
// The paper's guests run on a full Linux kernel; ours get a small, versioned
// syscall table instead — a guest heap (sys_alloc/sys_free), file-ish I/O
// against an in-memory filesystem (sys_open/sys_read/sys_write/sys_close)
// and bounded message channels (sys_send/sys_recv) — reached through the
// SYSCALL pseudo-op with the call number in v0, arguments in a0..a2 and the
// result in v0 (negative results are -errno, Linux style). Each thread keeps
// its own errno (sys_errno) and a syscall/errno trace ring that the campaign
// classifier walks to measure how far an injected failure cascades.
//
// Fault injection happens at this boundary (the kretprobes idea from the
// related OS-level injectors): the simulation resolves a SyscallInjection —
// forced errno, extra latency, short read/write, corrupted buffer — exactly
// once per logical call, keyed by the per-thread call index, and the layer
// applies it. The call-index keying is what makes a preemption or a latency
// sleep in the middle of a call unable to double-apply an injection.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "mem/physmem.hpp"
#include "util/bytesio.hpp"

namespace gemfi::os {

/// Bump when the table below changes incompatibly; guests can query it with
/// sys_version and bail out on a mismatch instead of misusing the table.
inline constexpr std::uint64_t kSyscallAbiVersion = 1;

/// Syscall numbers (passed in v0). 0 is deliberately invalid.
enum class Sysno : std::uint8_t {
  Invalid = 0,
  Alloc = 1,    // a0=bytes            -> address            | ENOMEM, EINVAL
  Free = 2,     // a0=address          -> 0                  | EINVAL
  Open = 3,     // a0=file_id a1=flags -> fd                 | ENOENT, EMFILE, EEXIST, EINVAL
  Read = 4,     // a0=fd a1=buf a2=len -> bytes read         | EBADF, EFAULT, EINVAL, EIO
  Write = 5,    // a0=fd a1=buf a2=len -> bytes written      | EBADF, EFAULT, EINVAL, EIO, ENOSPC
  Close = 6,    // a0=fd               -> 0                  | EBADF, EIO
  Send = 7,     // a0=chan a1=buf a2=len -> len              | EINVAL, EFAULT, EAGAIN, EMSGSIZE
  Recv = 8,     // a0=chan a1=buf a2=cap -> bytes received   | EINVAL, EFAULT, EAGAIN
  Errno = 9,    // -> this thread's last errno (never fails)
  Version = 10, // -> kSyscallAbiVersion (never fails)
};
inline constexpr unsigned kNumSysnos = 11;  // including Invalid

/// Lower-case name used by the fault-plan grammar ("write", "open", ...);
/// nullptr for Invalid/out-of-range.
const char* sysno_name(Sysno s) noexcept;
/// Inverse of sysno_name(); Sysno::Invalid when unknown.
Sysno sysno_from_name(const char* name) noexcept;

// --- guest errno values (Linux numbering so guests read naturally) ---
inline constexpr std::uint16_t kENOENT = 2;
inline constexpr std::uint16_t kEIO = 5;
inline constexpr std::uint16_t kEBADF = 9;
inline constexpr std::uint16_t kEAGAIN = 11;
inline constexpr std::uint16_t kENOMEM = 12;
inline constexpr std::uint16_t kEFAULT = 14;
inline constexpr std::uint16_t kEEXIST = 17;
inline constexpr std::uint16_t kEINVAL = 22;
inline constexpr std::uint16_t kEMFILE = 24;
inline constexpr std::uint16_t kENOSPC = 28;
inline constexpr std::uint16_t kENOSYS = 38;
inline constexpr std::uint16_t kEMSGSIZE = 90;

/// Symbolic name ("EIO") of a guest errno; "E?<n>" rendered by callers for
/// unknown values (returns nullptr).
const char* errno_name(std::uint16_t err) noexcept;
/// Inverse of errno_name(); 0 when unknown.
std::uint16_t errno_from_name(const char* name) noexcept;

/// Error-realism: could syscall `s` return `err` through the real table
/// above (the per-syscall errno sets documented in the Sysno enum)? An
/// injected errno outside this set is flagged by the classifier — the
/// experiment stressed a path no real execution could reach.
bool errno_realistic(Sysno s, std::uint16_t err) noexcept;

// --- sys_open flags (a1) ---
inline constexpr std::uint64_t kOpenWrite = 1;   // open for writing
inline constexpr std::uint64_t kOpenCreate = 2;  // create if missing
inline constexpr std::uint64_t kOpenTrunc = 4;   // truncate to empty
inline constexpr std::uint64_t kOpenExcl = 8;    // with Create: fail if exists

/// Injection actions resolved for one logical syscall. Produced by the FI
/// layer (fi::SyscallFaultInjector) exactly once per call; the OS layer only
/// consumes it. Default-constructed == "no injection".
struct SyscallInjection {
  bool fired = false;           // any plan selected this call
  std::uint16_t force_errno = 0;  // != 0: fail the call with this errno
  std::uint64_t latency = 0;      // extra ticks before the call completes
  bool has_partial = false;
  std::uint64_t partial_ppm = 0;  // requested length scaled to len*ppm/1e6
  std::uint8_t corrupt_bits = 0;  // != 0: flip this many bits in the buffer
  std::uint64_t corrupt_seed = 0; // deterministic bit selection
};

/// One completed syscall as the classifier sees it.
struct SyscallTraceEntry {
  std::uint8_t sysno = 0;
  std::uint16_t err = 0;        // 0 on success
  bool injected = false;        // an injection fired on this call
  std::uint64_t call_index = 0; // 1-based per-(thread, syscall) index

  void serialize(util::ByteWriter& w) const {
    w.put_u8(sysno);
    w.put_u16(err);
    w.put_bool(injected);
    w.put_u64(call_index);
  }
  void deserialize(util::ByteReader& r) {
    sysno = r.get_u8();
    err = r.get_u16();
    injected = r.get_bool();
    call_index = r.get_u64();
  }
};

/// A latency-delayed call parked while its thread sleeps. The injection
/// decisions were resolved at dispatch; completion reuses them verbatim, so
/// nothing is ever decided (or applied) twice for one logical call.
struct PendingSyscall {
  bool valid = false;
  Sysno sysno = Sysno::Invalid;
  std::uint64_t args[3] = {0, 0, 0};
  std::uint64_t call_index = 0;
  SyscallInjection inj;
};

struct SyscallLayerConfig {
  std::uint64_t heap_base = 0;       // guest heap region managed by sys_alloc
  std::uint64_t heap_bytes = 0;
  std::uint64_t file_capacity = 16 * 1024;  // per-file size bound (ENOSPC)
  std::uint64_t chan_capacity = 4096;       // per-channel byte budget (EAGAIN)
};

inline constexpr unsigned kMaxFiles = 64;   // file ids 0..63
inline constexpr unsigned kMaxFds = 16;     // per-system open-file table
inline constexpr unsigned kNumChannels = 4;
inline constexpr unsigned kTraceRingCap = 512;  // per-thread, drop-oldest

class SyscallLayer {
 public:
  SyscallLayer() = default;
  explicit SyscallLayer(const SyscallLayerConfig& cfg) : cfg_(cfg) {}

  void configure(const SyscallLayerConfig& cfg) { cfg_ = cfg; }
  [[nodiscard]] const SyscallLayerConfig& config() const noexcept { return cfg_; }

  /// Execute one syscall for thread `tid` with resolved injection actions.
  /// Returns the guest result (>= 0 success, < 0 is -errno) and records the
  /// trace entry. `call_index` must come from next_call_index() for this
  /// call — the layer never advances counters itself, so a preempted or
  /// slept-through call cannot be double-counted.
  std::int64_t execute(std::uint64_t tid, Sysno s, const std::uint64_t args[3],
                       std::uint64_t call_index, const SyscallInjection& inj,
                       mem::PhysMem& pm);

  /// Advance and return the 1-based call index of the next `s` call by
  /// `tid`. Called exactly once per logical syscall, at first dispatch.
  std::uint64_t next_call_index(std::uint64_t tid, Sysno s);

  // --- latency-delayed calls ---
  void park(std::uint64_t tid, Sysno s, const std::uint64_t args[3],
            std::uint64_t call_index, const SyscallInjection& inj);
  [[nodiscard]] bool has_pending(std::uint64_t tid) const noexcept;
  /// Execute the parked call with its stored decisions; returns the result.
  std::int64_t complete_pending(std::uint64_t tid, mem::PhysMem& pm);

  // --- per-thread introspection (classifier / tests) ---
  [[nodiscard]] std::uint64_t last_errno(std::uint64_t tid) const noexcept;
  [[nodiscard]] const std::vector<SyscallTraceEntry>& trace(std::uint64_t tid) const;
  /// Flat trace across all threads, thread-major (tid order): what the
  /// campaign classifier consumes along with per-entry thread ids.
  [[nodiscard]] std::vector<std::pair<std::uint64_t, SyscallTraceEntry>> full_trace() const;
  [[nodiscard]] std::uint64_t total_calls() const noexcept { return total_calls_; }
  [[nodiscard]] std::uint64_t total_errors() const noexcept { return total_errors_; }
  [[nodiscard]] std::uint64_t injected_calls() const noexcept { return injected_calls_; }

  // --- host-side test hooks ---
  /// Direct read of file `file_id` content (empty when absent).
  [[nodiscard]] std::vector<std::uint8_t> file_content(unsigned file_id) const;
  [[nodiscard]] bool file_exists(unsigned file_id) const noexcept;

  void serialize(util::ByteWriter& w) const;
  void deserialize(util::ByteReader& r);

 private:
  struct HeapBlock {
    std::uint64_t addr = 0;
    std::uint64_t size = 0;
  };
  struct File {
    bool exists = false;
    std::vector<std::uint8_t> data;
  };
  struct Fd {
    bool open = false;
    std::uint32_t file = 0;
    std::uint64_t pos = 0;
    bool writable = false;
  };
  struct Channel {
    std::vector<std::vector<std::uint8_t>> msgs;  // FIFO
    std::uint64_t bytes = 0;                      // sum of msg sizes
  };
  struct PerThread {
    std::uint64_t err = 0;  // last errno (0 after a success)
    std::array<std::uint64_t, kNumSysnos> calls{};
    std::vector<SyscallTraceEntry> trace;  // ring, kTraceRingCap entries
    std::uint64_t trace_dropped = 0;
    PendingSyscall pending;
  };

  PerThread& per_thread(std::uint64_t tid);
  [[nodiscard]] const PerThread* per_thread_or_null(std::uint64_t tid) const noexcept;
  void record(PerThread& pt, Sysno s, std::uint16_t err, bool injected,
              std::uint64_t call_index);
  std::int64_t do_call(std::uint64_t tid, Sysno s, const std::uint64_t args[3],
                       std::uint64_t call_index, const SyscallInjection& inj,
                       mem::PhysMem& pm);

  // The raw operations (no injection, no tracing); return >=0 or -errno.
  std::int64_t op_alloc(std::uint64_t bytes);
  std::int64_t op_free(std::uint64_t addr);
  std::int64_t op_open(std::uint64_t file_id, std::uint64_t flags);
  std::int64_t op_read(std::uint64_t fd, std::uint64_t buf, std::uint64_t len,
                       const SyscallInjection& inj, mem::PhysMem& pm);
  std::int64_t op_write(std::uint64_t fd, std::uint64_t buf, std::uint64_t len,
                        const SyscallInjection& inj, mem::PhysMem& pm);
  std::int64_t op_close(std::uint64_t fd);
  std::int64_t op_send(std::uint64_t chan, std::uint64_t buf, std::uint64_t len,
                       const SyscallInjection& inj, mem::PhysMem& pm);
  std::int64_t op_recv(std::uint64_t chan, std::uint64_t buf, std::uint64_t cap,
                       const SyscallInjection& inj, mem::PhysMem& pm);

  SyscallLayerConfig cfg_;
  std::vector<HeapBlock> heap_;  // allocated blocks, sorted by addr
  std::array<File, kMaxFiles> files_;
  std::array<Fd, kMaxFds> fds_;
  std::array<Channel, kNumChannels> chans_;
  std::vector<PerThread> threads_;  // indexed by tid, grown on demand
  std::uint64_t total_calls_ = 0;
  std::uint64_t total_errors_ = 0;
  std::uint64_t injected_calls_ = 0;
};

}  // namespace gemfi::os
