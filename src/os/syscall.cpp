#include "os/syscall.hpp"

#include <algorithm>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>

#include "util/rng.hpp"

namespace gemfi::os {

namespace {

constexpr std::uint64_t kPpm = 1'000'000;

struct ErrnoName {
  std::uint16_t code;
  const char* name;
};
constexpr ErrnoName kErrnoNames[] = {
    {kENOENT, "ENOENT"}, {kEIO, "EIO"},       {kEBADF, "EBADF"},
    {kEAGAIN, "EAGAIN"}, {kENOMEM, "ENOMEM"}, {kEFAULT, "EFAULT"},
    {kEEXIST, "EEXIST"}, {kEINVAL, "EINVAL"}, {kEMFILE, "EMFILE"},
    {kENOSPC, "ENOSPC"}, {kENOSYS, "ENOSYS"}, {kEMSGSIZE, "EMSGSIZE"},
};

constexpr const char* kSysnoNames[kNumSysnos] = {
    nullptr, "alloc", "free", "open", "read", "write",
    "close", "send",  "recv", "errno", "version",
};

/// Requested transfer length after an injected short read/write.
std::uint64_t effective_len(std::uint64_t len, const SyscallInjection& inj) noexcept {
  return inj.has_partial ? len * inj.partial_ppm / kPpm : len;
}

/// Flip `bits` pseudo-random bits of `data`, deterministically in
/// (seed, salt). The salt is the call index so repeated corruptions of the
/// same plan land on different bits each call.
void corrupt_buffer(std::span<std::uint8_t> data, unsigned bits, std::uint64_t seed,
                    std::uint64_t salt) {
  if (data.empty() || bits == 0) return;
  std::uint64_t st = seed ^ (salt * 0x9e3779b97f4a7c15ull);
  for (unsigned i = 0; i < bits; ++i) {
    const std::uint64_t bit = util::splitmix64(st) % (data.size() * 8);
    data[bit >> 3] ^= std::uint8_t(1u << (bit & 7));
  }
}

}  // namespace

const char* sysno_name(Sysno s) noexcept {
  const auto i = static_cast<unsigned>(s);
  return i < kNumSysnos ? kSysnoNames[i] : nullptr;
}

Sysno sysno_from_name(const char* name) noexcept {
  if (name == nullptr) return Sysno::Invalid;
  for (unsigned i = 1; i < kNumSysnos; ++i)
    if (std::strcmp(name, kSysnoNames[i]) == 0) return static_cast<Sysno>(i);
  return Sysno::Invalid;
}

const char* errno_name(std::uint16_t err) noexcept {
  for (const ErrnoName& e : kErrnoNames)
    if (e.code == err) return e.name;
  return nullptr;
}

std::uint16_t errno_from_name(const char* name) noexcept {
  if (name == nullptr) return 0;
  for (const ErrnoName& e : kErrnoNames)
    if (std::strcmp(name, e.name) == 0) return e.code;
  return 0;
}

bool errno_realistic(Sysno s, std::uint16_t err) noexcept {
  if (err == 0) return true;
  switch (s) {
    case Sysno::Alloc: return err == kENOMEM || err == kEINVAL;
    case Sysno::Free: return err == kEINVAL;
    case Sysno::Open:
      return err == kENOENT || err == kEMFILE || err == kEEXIST || err == kEINVAL;
    case Sysno::Read:
      return err == kEBADF || err == kEFAULT || err == kEINVAL || err == kEIO;
    case Sysno::Write:
      return err == kEBADF || err == kEFAULT || err == kEINVAL || err == kEIO ||
             err == kENOSPC;
    case Sysno::Close: return err == kEBADF || err == kEIO;
    case Sysno::Send:
      return err == kEINVAL || err == kEFAULT || err == kEAGAIN || err == kEMSGSIZE;
    case Sysno::Recv: return err == kEINVAL || err == kEFAULT || err == kEAGAIN;
    case Sysno::Errno:
    case Sysno::Version: return false;  // these calls cannot fail
    case Sysno::Invalid: return err == kENOSYS;
  }
  return false;
}

SyscallLayer::PerThread& SyscallLayer::per_thread(std::uint64_t tid) {
  if (tid >= threads_.size()) threads_.resize(tid + 1);
  return threads_[tid];
}

const SyscallLayer::PerThread* SyscallLayer::per_thread_or_null(
    std::uint64_t tid) const noexcept {
  return tid < threads_.size() ? &threads_[tid] : nullptr;
}

std::uint64_t SyscallLayer::next_call_index(std::uint64_t tid, Sysno s) {
  PerThread& pt = per_thread(tid);
  const auto i = static_cast<unsigned>(s);
  return ++pt.calls[i < kNumSysnos ? i : 0];
}

void SyscallLayer::record(PerThread& pt, Sysno s, std::uint16_t err, bool injected,
                          std::uint64_t call_index) {
  pt.err = err;
  ++total_calls_;
  if (err != 0) ++total_errors_;
  if (injected) ++injected_calls_;
  if (pt.trace.size() >= kTraceRingCap) {
    pt.trace.erase(pt.trace.begin());
    ++pt.trace_dropped;
  }
  SyscallTraceEntry e;
  e.sysno = static_cast<std::uint8_t>(s);
  e.err = err;
  e.injected = injected;
  e.call_index = call_index;
  pt.trace.push_back(e);
}

std::int64_t SyscallLayer::execute(std::uint64_t tid, Sysno s, const std::uint64_t args[3],
                                   std::uint64_t call_index, const SyscallInjection& inj,
                                   mem::PhysMem& pm) {
  const std::int64_t result = do_call(tid, s, args, call_index, inj, pm);
  const std::uint16_t err = result < 0 ? std::uint16_t(-result) : 0;
  record(per_thread(tid), s, err, inj.fired, call_index);
  return result;
}

std::int64_t SyscallLayer::do_call(std::uint64_t tid, Sysno s, const std::uint64_t args[3],
                                   std::uint64_t call_index, const SyscallInjection& inj,
                                   mem::PhysMem& pm) {
  if (inj.force_errno != 0) return -std::int64_t(inj.force_errno);
  // Thread the call index through as the corruption salt.
  SyscallInjection salted = inj;
  salted.corrupt_seed = inj.corrupt_seed ^ (call_index * 0x2545f4914f6cdd1dull);
  switch (s) {
    case Sysno::Alloc: return op_alloc(args[0]);
    case Sysno::Free: return op_free(args[0]);
    case Sysno::Open: return op_open(args[0], args[1]);
    case Sysno::Read: return op_read(args[0], args[1], args[2], salted, pm);
    case Sysno::Write: return op_write(args[0], args[1], args[2], salted, pm);
    case Sysno::Close: return op_close(args[0]);
    case Sysno::Send: return op_send(args[0], args[1], args[2], salted, pm);
    case Sysno::Recv: return op_recv(args[0], args[1], args[2], salted, pm);
    case Sysno::Errno: return std::int64_t(per_thread(tid).err);
    case Sysno::Version: return std::int64_t(kSyscallAbiVersion);
    case Sysno::Invalid: break;
  }
  return -std::int64_t(kENOSYS);
}

std::int64_t SyscallLayer::op_alloc(std::uint64_t bytes) {
  if (bytes == 0 || cfg_.heap_bytes == 0) return -std::int64_t(kEINVAL);
  const std::uint64_t size = (bytes + 15) & ~15ull;
  if (size < bytes || size > cfg_.heap_bytes) return -std::int64_t(kENOMEM);
  // First fit over the gaps between the addr-sorted allocated blocks.
  std::uint64_t candidate = cfg_.heap_base;
  std::size_t insert_at = 0;
  for (; insert_at < heap_.size(); ++insert_at) {
    const HeapBlock& b = heap_[insert_at];
    if (b.addr - candidate >= size) break;
    candidate = b.addr + b.size;
  }
  if (insert_at == heap_.size() &&
      cfg_.heap_base + cfg_.heap_bytes - candidate < size)
    return -std::int64_t(kENOMEM);
  heap_.insert(heap_.begin() + std::ptrdiff_t(insert_at), HeapBlock{candidate, size});
  return std::int64_t(candidate);
}

std::int64_t SyscallLayer::op_free(std::uint64_t addr) {
  for (std::size_t i = 0; i < heap_.size(); ++i) {
    if (heap_[i].addr == addr) {
      heap_.erase(heap_.begin() + std::ptrdiff_t(i));
      return 0;
    }
  }
  return -std::int64_t(kEINVAL);
}

std::int64_t SyscallLayer::op_open(std::uint64_t file_id, std::uint64_t flags) {
  if (file_id >= kMaxFiles || (flags & ~(kOpenWrite | kOpenCreate | kOpenTrunc | kOpenExcl)))
    return -std::int64_t(kEINVAL);
  File& f = files_[file_id];
  if (!f.exists && !(flags & kOpenCreate)) return -std::int64_t(kENOENT);
  if (f.exists && (flags & kOpenCreate) && (flags & kOpenExcl))
    return -std::int64_t(kEEXIST);
  unsigned fd = kMaxFds;
  for (unsigned i = 0; i < kMaxFds; ++i) {
    if (!fds_[i].open) {
      fd = i;
      break;
    }
  }
  if (fd == kMaxFds) return -std::int64_t(kEMFILE);
  f.exists = true;
  if ((flags & kOpenTrunc) && (flags & kOpenWrite)) f.data.clear();
  fds_[fd] = Fd{true, std::uint32_t(file_id), 0, (flags & kOpenWrite) != 0};
  return std::int64_t(fd);
}

std::int64_t SyscallLayer::op_read(std::uint64_t fd, std::uint64_t buf, std::uint64_t len,
                                   const SyscallInjection& inj, mem::PhysMem& pm) {
  if (fd >= kMaxFds || !fds_[fd].open) return -std::int64_t(kEBADF);
  if (len == 0) return 0;
  if (!pm.in_bounds(buf, len)) return -std::int64_t(kEFAULT);
  Fd& d = fds_[fd];
  const File& f = files_[d.file];
  const std::uint64_t eff = effective_len(len, inj);
  const std::uint64_t avail = d.pos < f.data.size() ? f.data.size() - d.pos : 0;
  const std::uint64_t n = std::min(eff, avail);
  if (n != 0) {
    std::vector<std::uint8_t> tmp(f.data.begin() + std::ptrdiff_t(d.pos),
                                  f.data.begin() + std::ptrdiff_t(d.pos + n));
    corrupt_buffer(tmp, inj.corrupt_bits, inj.corrupt_seed, 1);
    pm.write_block(buf, tmp);
    d.pos += n;
  }
  return std::int64_t(n);
}

std::int64_t SyscallLayer::op_write(std::uint64_t fd, std::uint64_t buf, std::uint64_t len,
                                    const SyscallInjection& inj, mem::PhysMem& pm) {
  if (fd >= kMaxFds || !fds_[fd].open || !fds_[fd].writable)
    return -std::int64_t(kEBADF);
  if (len == 0) return 0;
  if (!pm.in_bounds(buf, len)) return -std::int64_t(kEFAULT);
  Fd& d = fds_[fd];
  File& f = files_[d.file];
  const std::uint64_t eff = effective_len(len, inj);
  const std::uint64_t avail = d.pos < cfg_.file_capacity ? cfg_.file_capacity - d.pos : 0;
  const std::uint64_t n = std::min(eff, avail);
  if (eff != 0 && n == 0) return -std::int64_t(kENOSPC);
  if (n != 0) {
    std::vector<std::uint8_t> tmp(n);
    pm.read_block(buf, tmp);
    corrupt_buffer(tmp, inj.corrupt_bits, inj.corrupt_seed, 2);
    if (f.data.size() < d.pos + n) f.data.resize(d.pos + n);
    std::copy(tmp.begin(), tmp.end(), f.data.begin() + std::ptrdiff_t(d.pos));
    d.pos += n;
  }
  return std::int64_t(n);
}

std::int64_t SyscallLayer::op_close(std::uint64_t fd) {
  if (fd >= kMaxFds || !fds_[fd].open) return -std::int64_t(kEBADF);
  fds_[fd] = Fd{};
  return 0;
}

std::int64_t SyscallLayer::op_send(std::uint64_t chan, std::uint64_t buf, std::uint64_t len,
                                   const SyscallInjection& inj, mem::PhysMem& pm) {
  if (chan >= kNumChannels) return -std::int64_t(kEINVAL);
  if (len > cfg_.chan_capacity) return -std::int64_t(kEMSGSIZE);
  if (len != 0 && !pm.in_bounds(buf, len)) return -std::int64_t(kEFAULT);
  Channel& c = chans_[chan];
  const std::uint64_t eff = effective_len(len, inj);
  if (c.bytes + eff > cfg_.chan_capacity) return -std::int64_t(kEAGAIN);
  std::vector<std::uint8_t> msg(eff);
  if (eff != 0) pm.read_block(buf, msg);
  corrupt_buffer(msg, inj.corrupt_bits, inj.corrupt_seed, 3);
  c.bytes += eff;
  c.msgs.push_back(std::move(msg));
  return std::int64_t(eff);
}

std::int64_t SyscallLayer::op_recv(std::uint64_t chan, std::uint64_t buf, std::uint64_t cap,
                                   const SyscallInjection& inj, mem::PhysMem& pm) {
  if (chan >= kNumChannels) return -std::int64_t(kEINVAL);
  Channel& c = chans_[chan];
  if (c.msgs.empty()) return -std::int64_t(kEAGAIN);
  if (cap != 0 && !pm.in_bounds(buf, cap)) return -std::int64_t(kEFAULT);
  std::vector<std::uint8_t> msg = std::move(c.msgs.front());
  c.msgs.erase(c.msgs.begin());
  c.bytes -= msg.size();
  const std::uint64_t n = effective_len(std::min<std::uint64_t>(cap, msg.size()), inj);
  if (n != 0) {
    msg.resize(n);
    corrupt_buffer(msg, inj.corrupt_bits, inj.corrupt_seed, 4);
    pm.write_block(buf, msg);
  }
  return std::int64_t(n);
}

void SyscallLayer::park(std::uint64_t tid, Sysno s, const std::uint64_t args[3],
                        std::uint64_t call_index, const SyscallInjection& inj) {
  PerThread& pt = per_thread(tid);
  if (pt.pending.valid) throw std::logic_error("thread already has a pending syscall");
  pt.pending.valid = true;
  pt.pending.sysno = s;
  std::copy(args, args + 3, pt.pending.args);
  pt.pending.call_index = call_index;
  pt.pending.inj = inj;
}

bool SyscallLayer::has_pending(std::uint64_t tid) const noexcept {
  const PerThread* pt = per_thread_or_null(tid);
  return pt != nullptr && pt->pending.valid;
}

std::int64_t SyscallLayer::complete_pending(std::uint64_t tid, mem::PhysMem& pm) {
  PerThread& pt = per_thread(tid);
  if (!pt.pending.valid) throw std::logic_error("no pending syscall to complete");
  const PendingSyscall p = pt.pending;
  pt.pending = PendingSyscall{};
  return execute(tid, p.sysno, p.args, p.call_index, p.inj, pm);
}

std::uint64_t SyscallLayer::last_errno(std::uint64_t tid) const noexcept {
  const PerThread* pt = per_thread_or_null(tid);
  return pt != nullptr ? pt->err : 0;
}

const std::vector<SyscallTraceEntry>& SyscallLayer::trace(std::uint64_t tid) const {
  static const std::vector<SyscallTraceEntry> kEmpty;
  const PerThread* pt = per_thread_or_null(tid);
  return pt != nullptr ? pt->trace : kEmpty;
}

std::vector<std::pair<std::uint64_t, SyscallTraceEntry>> SyscallLayer::full_trace() const {
  std::vector<std::pair<std::uint64_t, SyscallTraceEntry>> out;
  for (std::uint64_t tid = 0; tid < threads_.size(); ++tid)
    for (const SyscallTraceEntry& e : threads_[tid].trace) out.emplace_back(tid, e);
  return out;
}

std::vector<std::uint8_t> SyscallLayer::file_content(unsigned file_id) const {
  if (file_id >= kMaxFiles || !files_[file_id].exists) return {};
  return files_[file_id].data;
}

bool SyscallLayer::file_exists(unsigned file_id) const noexcept {
  return file_id < kMaxFiles && files_[file_id].exists;
}

void SyscallLayer::serialize(util::ByteWriter& w) const {
  w.put_u64(cfg_.heap_base);
  w.put_u64(cfg_.heap_bytes);
  w.put_u64(cfg_.file_capacity);
  w.put_u64(cfg_.chan_capacity);
  w.put_u64(heap_.size());
  for (const HeapBlock& b : heap_) {
    w.put_u64(b.addr);
    w.put_u64(b.size);
  }
  for (const File& f : files_) {
    w.put_bool(f.exists);
    w.put_blob(f.data);
  }
  for (const Fd& d : fds_) {
    w.put_bool(d.open);
    w.put_u32(d.file);
    w.put_u64(d.pos);
    w.put_bool(d.writable);
  }
  for (const Channel& c : chans_) {
    w.put_u64(c.msgs.size());
    for (const auto& m : c.msgs) w.put_blob(m);
  }
  w.put_u64(threads_.size());
  for (const PerThread& pt : threads_) {
    w.put_u64(pt.err);
    for (const std::uint64_t c : pt.calls) w.put_u64(c);
    w.put_u64(pt.trace.size());
    for (const SyscallTraceEntry& e : pt.trace) e.serialize(w);
    w.put_u64(pt.trace_dropped);
    w.put_bool(pt.pending.valid);
    if (pt.pending.valid) {
      w.put_u8(static_cast<std::uint8_t>(pt.pending.sysno));
      for (const std::uint64_t a : pt.pending.args) w.put_u64(a);
      w.put_u64(pt.pending.call_index);
      const SyscallInjection& inj = pt.pending.inj;
      w.put_bool(inj.fired);
      w.put_u16(inj.force_errno);
      w.put_u64(inj.latency);
      w.put_bool(inj.has_partial);
      w.put_u64(inj.partial_ppm);
      w.put_u8(inj.corrupt_bits);
      w.put_u64(inj.corrupt_seed);
    }
  }
  w.put_u64(total_calls_);
  w.put_u64(total_errors_);
  w.put_u64(injected_calls_);
}

void SyscallLayer::deserialize(util::ByteReader& r) {
  cfg_.heap_base = r.get_u64();
  cfg_.heap_bytes = r.get_u64();
  cfg_.file_capacity = r.get_u64();
  cfg_.chan_capacity = r.get_u64();
  heap_.resize(r.get_u64());
  for (HeapBlock& b : heap_) {
    b.addr = r.get_u64();
    b.size = r.get_u64();
  }
  for (File& f : files_) {
    f.exists = r.get_bool();
    f.data = r.get_blob();
  }
  for (Fd& d : fds_) {
    d.open = r.get_bool();
    d.file = r.get_u32();
    d.pos = r.get_u64();
    d.writable = r.get_bool();
  }
  for (Channel& c : chans_) {
    c.msgs.resize(r.get_u64());
    c.bytes = 0;
    for (auto& m : c.msgs) {
      m = r.get_blob();
      c.bytes += m.size();
    }
  }
  threads_.resize(r.get_u64());
  for (PerThread& pt : threads_) {
    pt.err = r.get_u64();
    for (std::uint64_t& c : pt.calls) c = r.get_u64();
    pt.trace.resize(r.get_u64());
    for (SyscallTraceEntry& e : pt.trace) e.deserialize(r);
    pt.trace_dropped = r.get_u64();
    pt.pending = PendingSyscall{};
    pt.pending.valid = r.get_bool();
    if (pt.pending.valid) {
      pt.pending.sysno = static_cast<Sysno>(r.get_u8());
      for (std::uint64_t& a : pt.pending.args) a = r.get_u64();
      pt.pending.call_index = r.get_u64();
      SyscallInjection& inj = pt.pending.inj;
      inj.fired = r.get_bool();
      inj.force_errno = r.get_u16();
      inj.latency = r.get_u64();
      inj.has_partial = r.get_bool();
      inj.partial_ppm = r.get_u64();
      inj.corrupt_bits = r.get_u8();
      inj.corrupt_seed = r.get_u64();
    }
  }
  total_calls_ = r.get_u64();
  total_errors_ = r.get_u64();
  injected_calls_ = r.get_u64();
}

}  // namespace gemfi::os
