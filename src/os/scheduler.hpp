// Round-robin preemptive scheduler for the lightweight in-simulator kernel.
//
// One CPU, many threads. Preemption happens at commit boundaries after a
// fixed instruction quantum (a stand-in for the timer interrupt of the
// paper's full-system Linux); the simulation drains the pipeline and calls
// switch_to(), which swaps architectural contexts and reports the PCB
// transition so the fault-injection layer can re-bind its per-thread state —
// the mechanism Sec. III-C of the paper describes.
#pragma once

#include <cstdint>
#include <vector>

#include "cpu/cpu_model.hpp"
#include "os/thread.hpp"

namespace gemfi::os {

struct ContextSwitchEvent {
  std::uint64_t old_pcb = 0;  // 0 when nothing was running
  std::uint64_t new_pcb = 0;
  std::uint64_t new_tid = 0;
};

class Scheduler {
 public:
  explicit Scheduler(std::uint64_t quantum_insts = 50000) : quantum_(quantum_insts) {}

  /// Create a thread with the given initial context. Returns its tid.
  std::uint64_t add_thread(const cpu::ArchState& initial_ctx);

  [[nodiscard]] std::size_t thread_count() const noexcept { return threads_.size(); }
  [[nodiscard]] Thread& thread(std::uint64_t tid) { return threads_.at(tid); }
  [[nodiscard]] const Thread& thread(std::uint64_t tid) const { return threads_.at(tid); }

  /// True when a thread is actively scheduled on the CPU. A thread that
  /// parked itself (deschedule_current) keeps current_ as the round-robin
  /// anchor but is no longer "on" the CPU.
  [[nodiscard]] bool has_current() const noexcept { return current_ >= 0 && !parked_; }
  [[nodiscard]] Thread& current() { return threads_.at(std::size_t(current_)); }
  [[nodiscard]] const Thread& current() const { return threads_.at(std::size_t(current_)); }

  [[nodiscard]] bool all_finished() const noexcept;
  [[nodiscard]] std::size_t runnable_count() const noexcept;

  /// Account one committed instruction of the running thread; true when the
  /// quantum is exhausted (time to preempt) and another thread is runnable.
  bool on_commit();

  /// Account `n` committed instructions at once — the batched fast-path
  /// equivalent of n on_commit() calls, returning the last call's verdict.
  /// Exact as long as callers cap batches at commits_before_preempt().
  bool on_commits(std::uint64_t n);

  /// How many more commits the running thread can make before on_commit()
  /// would signal preemption; ~0 when it never will (no other runnable
  /// thread). Used to size fast-path batches so preemption still lands on
  /// exactly the same instruction as the one-commit-per-tick loop.
  [[nodiscard]] std::uint64_t commits_before_preempt() const noexcept {
    if (current_ < 0 || runnable_count() <= 1) return ~0ull;
    return quantum_used_ >= quantum_ ? 1 : quantum_ - quantum_used_;
  }

  /// Ticks until the scheduler itself needs the per-tick loop to run —
  /// the scheduler's half of the simulation's "next external event at tick
  /// T" query that bounds stall-cycle warps. Preemption is commit-indexed
  /// (the quantum counts committed instructions and
  /// commits_before_preempt() already bounds commit batches), so the only
  /// tick-based event is a sleeper's wake: distance from `now` to the
  /// earliest wake_tick, ~0 when nobody sleeps.
  [[nodiscard]] std::uint64_t ticks_before_tick_event(std::uint64_t now) const noexcept {
    if (sleepers_ == 0) return ~0ull;
    const std::uint64_t wake = next_wake_tick();
    return wake > now ? wake - now : 0;
  }

  /// Force the current quantum to end (YIELD pseudo-op).
  void yield() noexcept { quantum_used_ = quantum_; }

  /// Mark the running thread finished (EXIT pseudo-op / trap).
  void finish_current(int exit_code);

  // --- sleeping (latency-delayed syscalls) ---
  /// Park the running thread until `wake_tick`; it stops being runnable and
  /// the simulation must context-switch away (or idle-advance the clock).
  void sleep_current(std::uint64_t wake_tick);
  [[nodiscard]] bool has_sleepers() const noexcept { return sleepers_ != 0; }
  /// Earliest wake among sleepers; ~0 when none sleep.
  [[nodiscard]] std::uint64_t next_wake_tick() const noexcept;
  /// Wake every sleeper with wake_tick <= now, appending their tids (in tid
  /// order — replay determinism) to `woken`.
  void wake_sleepers(std::uint64_t now, std::vector<std::uint64_t>& woken);

  /// Take the (just-slept) current thread off the CPU, saving its context
  /// now so a wakeup can deposit a syscall result into it before the next
  /// switch. current_ stays put as the round-robin anchor; has_current()
  /// reports false until switch_to_next() schedules somebody.
  void deschedule_current(cpu::CpuModel& cpu);

  /// Take a just-finished current thread off the CPU when nobody is
  /// runnable, so the run loop can idle-advance the clock to the next wake
  /// instead of switching (switch_to_next() would have no thread to pick —
  /// the exit-while-everyone-sleeps case). current_ stays put as the
  /// round-robin anchor; has_current() reports false.
  void retire_current();

  /// Swap out the current thread (saving `cpu.arch()`), pick the next
  /// runnable one round-robin, load its context into the CPU and redirect
  /// fetch. Returns the PCB transition. Requires cpu.quiesced().
  ContextSwitchEvent switch_to_next(cpu::CpuModel& cpu);

  void serialize(util::ByteWriter& w) const;
  void deserialize(util::ByteReader& r);

 private:
  std::vector<Thread> threads_;
  std::int64_t current_ = -1;
  std::uint64_t quantum_;
  std::uint64_t quantum_used_ = 0;
  std::size_t sleepers_ = 0;
  bool parked_ = false;  // current_ thread descheduled (context already saved)
};

}  // namespace gemfi::os
