// Round-robin preemptive scheduler for the lightweight in-simulator kernel.
//
// One CPU, many threads. Preemption happens at commit boundaries after a
// fixed instruction quantum (a stand-in for the timer interrupt of the
// paper's full-system Linux); the simulation drains the pipeline and calls
// switch_to(), which swaps architectural contexts and reports the PCB
// transition so the fault-injection layer can re-bind its per-thread state —
// the mechanism Sec. III-C of the paper describes.
#pragma once

#include <cstdint>
#include <vector>

#include "cpu/cpu_model.hpp"
#include "os/thread.hpp"

namespace gemfi::os {

struct ContextSwitchEvent {
  std::uint64_t old_pcb = 0;  // 0 when nothing was running
  std::uint64_t new_pcb = 0;
  std::uint64_t new_tid = 0;
};

class Scheduler {
 public:
  explicit Scheduler(std::uint64_t quantum_insts = 50000) : quantum_(quantum_insts) {}

  /// Create a thread with the given initial context. Returns its tid.
  std::uint64_t add_thread(const cpu::ArchState& initial_ctx);

  [[nodiscard]] std::size_t thread_count() const noexcept { return threads_.size(); }
  [[nodiscard]] Thread& thread(std::uint64_t tid) { return threads_.at(tid); }
  [[nodiscard]] const Thread& thread(std::uint64_t tid) const { return threads_.at(tid); }

  [[nodiscard]] bool has_current() const noexcept { return current_ >= 0; }
  [[nodiscard]] Thread& current() { return threads_.at(std::size_t(current_)); }
  [[nodiscard]] const Thread& current() const { return threads_.at(std::size_t(current_)); }

  [[nodiscard]] bool all_finished() const noexcept;
  [[nodiscard]] std::size_t runnable_count() const noexcept;

  /// Account one committed instruction of the running thread; true when the
  /// quantum is exhausted (time to preempt) and another thread is runnable.
  bool on_commit();

  /// Account `n` committed instructions at once — the batched fast-path
  /// equivalent of n on_commit() calls, returning the last call's verdict.
  /// Exact as long as callers cap batches at commits_before_preempt().
  bool on_commits(std::uint64_t n);

  /// How many more commits the running thread can make before on_commit()
  /// would signal preemption; ~0 when it never will (no other runnable
  /// thread). Used to size fast-path batches so preemption still lands on
  /// exactly the same instruction as the one-commit-per-tick loop.
  [[nodiscard]] std::uint64_t commits_before_preempt() const noexcept {
    if (current_ < 0 || runnable_count() <= 1) return ~0ull;
    return quantum_used_ >= quantum_ ? 1 : quantum_ - quantum_used_;
  }

  /// Ticks until the scheduler itself needs the per-tick loop to run —
  /// the scheduler's half of the simulation's "next external event at tick
  /// T" query that bounds stall-cycle warps. Preemption here is
  /// commit-indexed (the quantum counts committed instructions, not ticks,
  /// and commits_before_preempt() already bounds commit batches), so no
  /// quantum expiry can land inside a window in which nothing commits:
  /// always ~0 (no tick-based event). Kept as an explicit API so a future
  /// tick-based timer slots into the existing warp bound instead of
  /// silently breaking it.
  [[nodiscard]] std::uint64_t ticks_before_tick_event() const noexcept { return ~0ull; }

  /// Force the current quantum to end (YIELD pseudo-op).
  void yield() noexcept { quantum_used_ = quantum_; }

  /// Mark the running thread finished (EXIT pseudo-op / trap).
  void finish_current(int exit_code);

  /// Swap out the current thread (saving `cpu.arch()`), pick the next
  /// runnable one round-robin, load its context into the CPU and redirect
  /// fetch. Returns the PCB transition. Requires cpu.quiesced().
  ContextSwitchEvent switch_to_next(cpu::CpuModel& cpu);

  void serialize(util::ByteWriter& w) const;
  void deserialize(util::ByteReader& r);

 private:
  std::vector<Thread> threads_;
  std::int64_t current_ = -1;
  std::uint64_t quantum_;
  std::uint64_t quantum_used_ = 0;
};

}  // namespace gemfi::os
