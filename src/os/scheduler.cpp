#include "os/scheduler.hpp"

#include <stdexcept>

namespace gemfi::os {

std::uint64_t Scheduler::add_thread(const cpu::ArchState& initial_ctx) {
  Thread t;
  t.tid = threads_.size();
  t.pcb_addr = kPcbBase + t.tid * kPcbStride;
  t.ctx = initial_ctx;
  threads_.push_back(std::move(t));
  return threads_.back().tid;
}

bool Scheduler::all_finished() const noexcept {
  for (const Thread& t : threads_)
    if (!t.finished) return false;
  return true;
}

std::size_t Scheduler::runnable_count() const noexcept {
  std::size_t n = 0;
  for (const Thread& t : threads_)
    if (t.runnable()) ++n;
  return n;
}

bool Scheduler::on_commit() {
  if (current_ < 0) return false;
  ++current().committed;
  ++quantum_used_;
  return quantum_used_ >= quantum_ && runnable_count() > 1;
}

bool Scheduler::on_commits(std::uint64_t n) {
  if (current_ < 0 || n == 0) return false;
  current().committed += n;
  quantum_used_ += n;
  return quantum_used_ >= quantum_ && runnable_count() > 1;
}

void Scheduler::finish_current(int exit_code) {
  if (current_ < 0) throw std::logic_error("no running thread to finish");
  current().finished = true;
  current().exit_code = exit_code;
}

void Scheduler::sleep_current(std::uint64_t wake_tick) {
  if (current_ < 0) throw std::logic_error("no running thread to sleep");
  Thread& t = current();
  if (t.finished || t.sleeping) throw std::logic_error("thread cannot sleep");
  t.sleeping = true;
  t.wake_tick = wake_tick;
  ++sleepers_;
}

std::uint64_t Scheduler::next_wake_tick() const noexcept {
  std::uint64_t wake = ~0ull;
  for (const Thread& t : threads_)
    if (t.sleeping && t.wake_tick < wake) wake = t.wake_tick;
  return wake;
}

void Scheduler::wake_sleepers(std::uint64_t now, std::vector<std::uint64_t>& woken) {
  if (sleepers_ == 0) return;
  for (Thread& t : threads_) {
    if (t.sleeping && t.wake_tick <= now) {
      t.sleeping = false;
      t.wake_tick = 0;
      --sleepers_;
      woken.push_back(t.tid);
    }
  }
}

void Scheduler::deschedule_current(cpu::CpuModel& cpu) {
  if (current_ < 0 || parked_) throw std::logic_error("no running thread to deschedule");
  Thread& t = current();
  if (!t.finished) t.ctx = cpu.arch();  // save context now, not at the next switch
  parked_ = true;
}

void Scheduler::retire_current() {
  if (current_ < 0 || parked_) throw std::logic_error("no running thread to retire");
  if (!current().finished) throw std::logic_error("retire of an unfinished thread");
  parked_ = true;  // finished: nothing to save, nothing to clobber
}

ContextSwitchEvent Scheduler::switch_to_next(cpu::CpuModel& cpu) {
  ContextSwitchEvent ev;
  if (current_ >= 0) {
    Thread& old = current();
    ev.old_pcb = old.pcb_addr;
    // A parked thread already saved its context (and a wakeup may have
    // deposited a syscall result into it since) — don't clobber it.
    if (!old.finished && !parked_) old.ctx = cpu.arch();  // save context
  }

  // Round-robin from the thread after the current one.
  const std::size_t n = threads_.size();
  if (n == 0) throw std::logic_error("no threads");
  std::size_t start = current_ >= 0 ? std::size_t(current_ + 1) : 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t idx = (start + i) % n;
    if (threads_[idx].runnable()) {
      current_ = std::int64_t(idx);
      quantum_used_ = 0;
      parked_ = false;
      Thread& next = threads_[idx];
      cpu.arch() = next.ctx;
      cpu.flush_and_redirect(next.ctx.pc());
      ev.new_pcb = next.pcb_addr;
      ev.new_tid = next.tid;
      return ev;
    }
  }
  throw std::logic_error("switch_to_next with no runnable thread");
}

void Scheduler::serialize(util::ByteWriter& w) const {
  w.put_u64(threads_.size());
  for (const Thread& t : threads_) t.serialize(w);
  w.put_i64(current_);
  w.put_u64(quantum_);
  w.put_u64(quantum_used_);
  w.put_bool(parked_);
}

void Scheduler::deserialize(util::ByteReader& r) {
  const std::uint64_t n = r.get_u64();
  threads_.resize(n);
  for (Thread& t : threads_) t.deserialize(r);
  current_ = r.get_i64();
  quantum_ = r.get_u64();
  quantum_used_ = r.get_u64();
  parked_ = r.get_bool();
  sleepers_ = 0;
  for (const Thread& t : threads_)
    if (t.sleeping) ++sleepers_;
}

}  // namespace gemfi::os
