#include "os/scheduler.hpp"

#include <stdexcept>

namespace gemfi::os {

std::uint64_t Scheduler::add_thread(const cpu::ArchState& initial_ctx) {
  Thread t;
  t.tid = threads_.size();
  t.pcb_addr = kPcbBase + t.tid * kPcbStride;
  t.ctx = initial_ctx;
  threads_.push_back(std::move(t));
  return threads_.back().tid;
}

bool Scheduler::all_finished() const noexcept {
  for (const Thread& t : threads_)
    if (!t.finished) return false;
  return true;
}

std::size_t Scheduler::runnable_count() const noexcept {
  std::size_t n = 0;
  for (const Thread& t : threads_)
    if (!t.finished) ++n;
  return n;
}

bool Scheduler::on_commit() {
  if (current_ < 0) return false;
  ++current().committed;
  ++quantum_used_;
  return quantum_used_ >= quantum_ && runnable_count() > 1;
}

bool Scheduler::on_commits(std::uint64_t n) {
  if (current_ < 0 || n == 0) return false;
  current().committed += n;
  quantum_used_ += n;
  return quantum_used_ >= quantum_ && runnable_count() > 1;
}

void Scheduler::finish_current(int exit_code) {
  if (current_ < 0) throw std::logic_error("no running thread to finish");
  current().finished = true;
  current().exit_code = exit_code;
}

ContextSwitchEvent Scheduler::switch_to_next(cpu::CpuModel& cpu) {
  ContextSwitchEvent ev;
  if (current_ >= 0) {
    Thread& old = current();
    ev.old_pcb = old.pcb_addr;
    if (!old.finished) old.ctx = cpu.arch();  // save context
  }

  // Round-robin from the thread after the current one.
  const std::size_t n = threads_.size();
  if (n == 0) throw std::logic_error("no threads");
  std::size_t start = current_ >= 0 ? std::size_t(current_ + 1) : 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t idx = (start + i) % n;
    if (!threads_[idx].finished) {
      current_ = std::int64_t(idx);
      quantum_used_ = 0;
      Thread& next = threads_[idx];
      cpu.arch() = next.ctx;
      cpu.flush_and_redirect(next.ctx.pc());
      ev.new_pcb = next.pcb_addr;
      ev.new_tid = next.tid;
      return ev;
    }
  }
  throw std::logic_error("switch_to_next with no runnable thread");
}

void Scheduler::serialize(util::ByteWriter& w) const {
  w.put_u64(threads_.size());
  for (const Thread& t : threads_) t.serialize(w);
  w.put_i64(current_);
  w.put_u64(quantum_);
  w.put_u64(quantum_used_);
}

void Scheduler::deserialize(util::ByteReader& r) {
  const std::uint64_t n = r.get_u64();
  threads_.resize(n);
  for (Thread& t : threads_) t.deserialize(r);
  current_ = r.get_i64();
  quantum_ = r.get_u64();
  quantum_used_ = r.get_u64();
}

}  // namespace gemfi::os
