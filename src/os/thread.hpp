// Guest threads.
//
// The paper runs applications under a full Linux kernel on gem5 and
// identifies threads "at the hardware/simulator level by their unique
// Process Control Block (PCB) address", re-binding fault-injection state on
// every context switch. Our lightweight kernel reproduces exactly that
// contract: every thread has a distinct PCB address, and the scheduler
// announces PCB changes to whoever subscribes (the FaultManager).
#pragma once

#include <cstdint>
#include <string>

#include "cpu/arch_state.hpp"

namespace gemfi::os {

/// Base of the fake kernel PCB region; PCB addresses only need to be unique,
/// stable identifiers (they are never dereferenced by the simulator).
inline constexpr std::uint64_t kPcbBase = 0xfffff00000000000ull;
inline constexpr std::uint64_t kPcbStride = 0x180;

struct Thread {
  std::uint64_t tid = 0;       // kernel thread id (creation order)
  std::uint64_t pcb_addr = 0;  // unique PCB address (GemFI's thread identity)
  cpu::ArchState ctx;          // saved context while descheduled
  bool finished = false;
  bool sleeping = false;       // blocked in a latency-delayed syscall
  std::uint64_t wake_tick = 0; // earliest tick the sleeper becomes runnable
  int exit_code = 0;
  std::string output;          // bytes emitted via the print pseudo-ops
  std::uint64_t committed = 0; // committed instruction count

  [[nodiscard]] bool runnable() const noexcept { return !finished && !sleeping; }

  void serialize(util::ByteWriter& w) const {
    w.put_u64(tid);
    w.put_u64(pcb_addr);
    ctx.serialize(w);
    w.put_bool(finished);
    w.put_bool(sleeping);
    w.put_u64(wake_tick);
    w.put_u64(std::uint64_t(std::int64_t(exit_code)));
    w.put_string(output);
    w.put_u64(committed);
  }

  void deserialize(util::ByteReader& r) {
    tid = r.get_u64();
    pcb_addr = r.get_u64();
    ctx.deserialize(r);
    finished = r.get_bool();
    sleeping = r.get_bool();
    wake_tick = r.get_u64();
    exit_code = int(std::int64_t(r.get_u64()));
    output = r.get_string();
    committed = r.get_u64();
  }
};

}  // namespace gemfi::os
