#include "common.hpp"

#include <array>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <thread>

namespace gemfi::bench {

campaign::CampaignConfig Options::campaign_config() const {
  campaign::CampaignConfig cfg;
  cfg.cpu = sim::CpuKind::Pipelined;
  cfg.switch_to_atomic_after_fault = true;
  cfg.use_checkpoint = true;
  cfg.workers = workers == 0 ? std::max(1u, std::thread::hardware_concurrency()) : workers;
  cfg.predecode = predecode;
  cfg.fastpath = fastpath;
  cfg.fastmode = fastmode;
  return cfg;
}

std::vector<std::string> Options::app_list() const {
  return apps.empty() ? apps::app_names() : apps;
}

Options parse_options(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      opt.quick = true;
    } else if (arg == "--full") {
      opt.full = true;
    } else if (arg.rfind("--n=", 0) == 0) {
      opt.n_override = std::strtoull(arg.c_str() + 4, nullptr, 10);
    } else if (arg.rfind("--seed=", 0) == 0) {
      opt.seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--workers=", 0) == 0) {
      opt.workers = unsigned(std::strtoul(arg.c_str() + 10, nullptr, 10));
    } else if (arg == "--no-predecode") {
      opt.predecode = false;
    } else if (arg == "--no-fastpath") {
      opt.fastpath = false;
    } else if (arg == "--no-fastmode") {
      opt.fastmode = false;
    } else if (arg.rfind("--json=", 0) == 0) {
      opt.json = arg.substr(7);
    } else if (arg.rfind("--apps=", 0) == 0) {
      std::string list = arg.substr(7);
      std::size_t pos = 0;
      while (pos != std::string::npos) {
        const std::size_t comma = list.find(',', pos);
        opt.apps.push_back(list.substr(pos, comma - pos));
        pos = comma == std::string::npos ? comma : comma + 1;
      }
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "options: --quick | --full | --n=<count> | --apps=a,b,c | "
          "--seed=<u64> | --workers=<k> | --no-predecode | --no-fastpath | "
          "--no-fastmode | --json=<path>\n");
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown option: %s (try --help)\n", arg.c_str());
      std::exit(2);
    }
  }
  return opt;
}

void print_header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

void print_outcome_legend() {
  std::printf("%-22s %8s %8s %8s %8s %8s %8s %8s %8s\n", "cell", "crash%", "nonprop%",
              "strict%", "correct%", "sdc%", "tmout%", "attack%", "n");
}

void print_outcome_row(const std::string& label, const campaign::CampaignReport& report) {
  std::printf("%-22s %8.1f %8.1f %8.1f %8.1f %8.1f %8.1f %8.1f %8zu\n", label.c_str(),
              100.0 * report.fraction(apps::Outcome::Crashed),
              100.0 * report.fraction(apps::Outcome::NonPropagated),
              100.0 * report.fraction(apps::Outcome::StrictlyCorrect),
              100.0 * report.fraction(apps::Outcome::Correct),
              100.0 * report.fraction(apps::Outcome::SDC),
              100.0 * report.fraction(apps::Outcome::Timeout),
              100.0 * report.fraction(apps::Outcome::AttackEffective), report.total());
  const struct {
    const char* metric;
    apps::Outcome outcome;
  } cols[] = {{"crash_pct", apps::Outcome::Crashed},
              {"nonprop_pct", apps::Outcome::NonPropagated},
              {"strict_pct", apps::Outcome::StrictlyCorrect},
              {"correct_pct", apps::Outcome::Correct},
              {"sdc_pct", apps::Outcome::SDC},
              {"timeout_pct", apps::Outcome::Timeout},
              {"attack_pct", apps::Outcome::AttackEffective}};
  for (const auto& c : cols) json_record(c.metric, 100.0 * report.fraction(c.outcome), "%", label);
  json_record("experiments", double(report.total()), "count", label);
  json_record("wall_seconds", report.wall_seconds, "s", label);
}

// --- JSON sink --------------------------------------------------------------

namespace {

std::vector<std::array<std::string, 4>>& json_records() {
  static std::vector<std::array<std::string, 4>> records;
  return records;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Recursive-descent JSON value parser over [p, end); advances p past the
/// value and returns false on any syntax violation.
bool parse_value(const char*& p, const char* end, int depth);

void skip_ws(const char*& p, const char* end) {
  while (p != end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r')) ++p;
}

bool parse_string(const char*& p, const char* end) {
  if (p == end || *p != '"') return false;
  for (++p; p != end; ++p) {
    if (*p == '\\') {
      if (++p == end) return false;  // escape consumes one char (enough here)
    } else if (*p == '"') {
      ++p;
      return true;
    } else if (static_cast<unsigned char>(*p) < 0x20) {
      return false;
    }
  }
  return false;
}

bool parse_number(const char*& p, const char* end) {
  const char* start = p;
  if (p != end && *p == '-') ++p;
  while (p != end && (std::isdigit(static_cast<unsigned char>(*p)) || *p == '.' || *p == 'e' ||
                      *p == 'E' || *p == '+' || *p == '-'))
    ++p;
  if (p == start) return false;
  char* parsed = nullptr;
  std::strtod(start, &parsed);
  return parsed == p;
}

bool parse_value(const char*& p, const char* end, int depth) {
  if (depth > 64) return false;
  skip_ws(p, end);
  if (p == end) return false;
  if (*p == '"') return parse_string(p, end);
  if (*p == '{' || *p == '[') {
    const char open = *p;
    const char close = open == '{' ? '}' : ']';
    ++p;
    skip_ws(p, end);
    if (p != end && *p == close) {
      ++p;
      return true;
    }
    while (true) {
      if (open == '{') {
        skip_ws(p, end);
        if (!parse_string(p, end)) return false;
        skip_ws(p, end);
        if (p == end || *p != ':') return false;
        ++p;
      }
      if (!parse_value(p, end, depth + 1)) return false;
      skip_ws(p, end);
      if (p == end) return false;
      if (*p == ',') {
        ++p;
        continue;
      }
      if (*p == close) {
        ++p;
        return true;
      }
      return false;
    }
  }
  for (const char* kw : {"true", "false", "null"}) {
    const std::size_t len = std::strlen(kw);
    if (std::size_t(end - p) >= len && std::memcmp(p, kw, len) == 0) {
      p += len;
      return true;
    }
  }
  return parse_number(p, end);
}

}  // namespace

void json_record(const std::string& metric, double value, const std::string& unit,
                 const std::string& config) {
  char num[64];
  // NaN/inf have no JSON number representation; emit null rather than a
  // document the self-check would reject.
  if (std::isfinite(value))
    std::snprintf(num, sizeof num, "%.17g", value);
  else
    std::snprintf(num, sizeof num, "null");
  json_records().push_back({metric, num, unit, config});
}

bool json_valid(const std::string& text) {
  const char* p = text.data();
  const char* end = p + text.size();
  if (!parse_value(p, end, 0)) return false;
  skip_ws(p, end);
  return p == end;  // exactly one top-level value
}

bool json_write(const std::string& path, const std::string& bench_name) {
  if (path.empty()) return true;
  std::string doc = "{\"bench\": \"BENCH_" + json_escape(bench_name) + "\", \"records\": [";
  bool first = true;
  for (const auto& r : json_records()) {
    if (!first) doc += ',';
    first = false;
    doc += "\n  {\"metric\": \"" + json_escape(r[0]) + "\", \"value\": " + r[1] +
           ", \"unit\": \"" + json_escape(r[2]) + "\", \"config\": \"" + json_escape(r[3]) +
           "\"}";
  }
  doc += "\n]}\n";
  if (!json_valid(doc)) {
    std::fprintf(stderr, "json_write: self-check failed, refusing to write %s\n", path.c_str());
    return false;
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(doc.data(), std::streamsize(doc.size()));
  out.flush();
  if (!out) {
    std::fprintf(stderr, "json_write: cannot write %s\n", path.c_str());
    return false;
  }
  return true;
}

}  // namespace gemfi::bench
