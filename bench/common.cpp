#include "common.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

namespace gemfi::bench {

campaign::CampaignConfig Options::campaign_config() const {
  campaign::CampaignConfig cfg;
  cfg.cpu = sim::CpuKind::Pipelined;
  cfg.switch_to_atomic_after_fault = true;
  cfg.use_checkpoint = true;
  cfg.workers = workers == 0 ? std::max(1u, std::thread::hardware_concurrency()) : workers;
  cfg.predecode = predecode;
  return cfg;
}

std::vector<std::string> Options::app_list() const {
  return apps.empty() ? apps::app_names() : apps;
}

Options parse_options(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      opt.quick = true;
    } else if (arg == "--full") {
      opt.full = true;
    } else if (arg.rfind("--n=", 0) == 0) {
      opt.n_override = std::strtoull(arg.c_str() + 4, nullptr, 10);
    } else if (arg.rfind("--seed=", 0) == 0) {
      opt.seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--workers=", 0) == 0) {
      opt.workers = unsigned(std::strtoul(arg.c_str() + 10, nullptr, 10));
    } else if (arg == "--no-predecode") {
      opt.predecode = false;
    } else if (arg.rfind("--apps=", 0) == 0) {
      std::string list = arg.substr(7);
      std::size_t pos = 0;
      while (pos != std::string::npos) {
        const std::size_t comma = list.find(',', pos);
        opt.apps.push_back(list.substr(pos, comma - pos));
        pos = comma == std::string::npos ? comma : comma + 1;
      }
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "options: --quick | --full | --n=<count> | --apps=a,b,c | "
          "--seed=<u64> | --workers=<k> | --no-predecode\n");
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown option: %s (try --help)\n", arg.c_str());
      std::exit(2);
    }
  }
  return opt;
}

void print_header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

void print_outcome_legend() {
  std::printf("%-22s %8s %8s %8s %8s %8s %8s %8s\n", "cell", "crash%", "nonprop%",
              "strict%", "correct%", "sdc%", "tmout%", "n");
}

void print_outcome_row(const std::string& label, const campaign::CampaignReport& report) {
  std::printf("%-22s %8.1f %8.1f %8.1f %8.1f %8.1f %8.1f %8zu\n", label.c_str(),
              100.0 * report.fraction(apps::Outcome::Crashed),
              100.0 * report.fraction(apps::Outcome::NonPropagated),
              100.0 * report.fraction(apps::Outcome::StrictlyCorrect),
              100.0 * report.fraction(apps::Outcome::Correct),
              100.0 * report.fraction(apps::Outcome::SDC),
              100.0 * report.fraction(apps::Outcome::Timeout), report.total());
}

}  // namespace gemfi::bench
