// Fig. 5 reproduction: outcome distribution vs fault Location, per
// application plus the per-app Total column — the paper's central
// validation result (Sec. IV-B-2).
//
// For each app and each micro-architectural location we run a campaign of
// uniformly timed single-bit flips and print the outcome distribution.
// Shape targets from the paper:
//   * FP-register faults are the most benign everywhere; Deblocking (no FP
//     instructions) is 100% strict-correct there;
//   * integer-register faults crash most (gp/sp/ra/iterators), with
//     DCT/Jacobi roughly 2x the others;
//   * PC faults are almost always fatal;
//   * load/store-data faults are mostly benign (~78% correct in the paper);
//   * PI's decode-stage crash rate is about half the other apps' (almost no
//     memory accesses).
#include <cstdio>

#include "common.hpp"
#include "util/stats.hpp"

using namespace gemfi;

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv);
  bench::print_header("Fig. 5: application behavior vs fault-injection location");

  const auto cfg = opt.campaign_config();
  const std::size_t n = opt.per_cell(50, 8, 2504);
  std::printf("  experiments per (app, location) cell: %zu\n", n);
  std::printf("  paper-scale sizing per Leveugle/DATE'09 at 99%%/1%%: %zu (finite\n"
              "  population 2944) -- rerun with --full for that sample size\n\n",
              util::required_sample_size(2944, 0.01, 0.99));

  static constexpr fi::FaultLocation kLocations[] = {
      fi::FaultLocation::IntReg,  fi::FaultLocation::FpReg,
      fi::FaultLocation::Fetch,   fi::FaultLocation::Decode,
      fi::FaultLocation::Execute, fi::FaultLocation::LoadStore,
      fi::FaultLocation::PC,
  };
  static constexpr const char* kLocNames[] = {"int-reg", "fp-reg", "fetch", "decode",
                                              "execute", "ldst",   "pc"};

  for (const std::string& name : opt.app_list()) {
    const auto ca = campaign::calibrate(apps::build_app(name, opt.scale()), cfg);
    std::printf("-- %s (kernel: %llu fetched insts) --\n", name.c_str(),
                (unsigned long long)ca.kernel_fetches);
    bench::print_outcome_legend();

    campaign::CampaignReport total;
    util::Rng rng(opt.seed ^ std::hash<std::string>{}(name));
    for (unsigned li = 0; li < std::size(kLocations); ++li) {
      std::vector<fi::Fault> faults;
      faults.reserve(n);
      for (std::size_t i = 0; i < n; ++i)
        faults.push_back(campaign::random_fault(rng, kLocations[li], ca.kernel_fetches));
      const auto report = campaign::run_campaign(ca, faults, cfg);
      bench::print_outcome_row(std::string("  ") + kLocNames[li], report);
      for (unsigned o = 0; o < apps::kNumOutcomes; ++o) total.counts[o] += report.counts[o];
      total.wall_seconds += report.wall_seconds;
    }
    bench::print_outcome_row("  TOTAL", total);
    std::printf("  campaign wall time: %.1f s\n\n", total.wall_seconds);
  }
  return bench::json_write(opt.json, "fig5_location") ? 0 : 1;
}
