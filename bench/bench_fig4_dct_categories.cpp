// Fig. 4 reproduction: the outcome categories of the DCT benchmark.
//
// The paper shows (a) a strictly correct result, (b) a relaxed-correct
// result (PSNR above the 30 dB bar but not bit-identical), (c) an SDC, and
// (d) the quality loss. We cannot print images in a terminal, so this bench
// searches a seeded fault stream for one representative of each category and
// reports its PSNR — the quantity Fig. 4 visualizes.
#include <cstdio>

#include "common.hpp"

using namespace gemfi;

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv);
  bench::print_header("Fig. 4: DCT result categories (PSNR vs input image)");

  const auto cfg = opt.campaign_config();
  const auto ca = campaign::calibrate(apps::build_app("dct", opt.scale()), cfg);
  std::printf("  golden run: %llu committed insts, FI window %llu fetches\n",
              (unsigned long long)ca.golden_committed,
              (unsigned long long)ca.kernel_fetches);

  // (a) fault-free: strictly correct by construction.
  double golden_metric = 0.0;
  ca.app.acceptable(ca.app.golden_output, golden_metric);
  std::printf("  (a) error-free execution: strictly correct, PSNR %.2f dB\n",
              golden_metric);

  util::Rng rng(opt.seed);
  bool have_correct = false, have_sdc = false, have_strict = false;
  const std::size_t budget = opt.per_cell(400, 60, 4000);
  for (std::size_t i = 0; i < budget && !(have_correct && have_sdc && have_strict); ++i) {
    const fi::Fault f = campaign::random_fault_any(rng, ca.kernel_fetches);
    const auto er = campaign::run_experiment(ca, f, cfg);
    const auto o = er.classification.outcome;
    if (o == apps::Outcome::Correct && !have_correct) {
      have_correct = true;
      std::printf("  (b) relaxed-correct example: PSNR %.2f dB  [%s]\n",
                  er.classification.metric, f.to_line().c_str());
    } else if (o == apps::Outcome::SDC && !have_sdc) {
      have_sdc = true;
      double m = 0.0;
      std::printf("  (c) SDC example: output outside the 30 dB bar  [%s]\n",
                  f.to_line().c_str());
      (void)m;
    } else if (o == apps::Outcome::StrictlyCorrect && !have_strict) {
      have_strict = true;
      std::printf("  (a') strictly-correct under a propagated fault  [%s]\n",
                  f.to_line().c_str());
    }
  }
  if (!have_correct) std::printf("  (b) no relaxed-correct fault found within budget\n");
  if (!have_sdc) std::printf("  (c) no SDC fault found within budget\n");
  std::printf("  acceptance bar: PSNR > 30 dB vs the input image (paper Sec. IV-B-1)\n");
  return bench::json_write(opt.json, "fig4_dct_categories") ? 0 : 1;
}
