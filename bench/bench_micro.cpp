// Engineering micro-benchmarks (google-benchmark): not a paper figure, but a
// regression guard on the substrate's hot paths — decoder, execution engine,
// cache model, branch predictor, whole-CPU simulation rates, checkpoint
// capture/restore, and the FaultManager fast path that Fig. 7's overhead
// story depends on.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "apps/app.hpp"
#include "chkpt/checkpoint.hpp"
#include "common.hpp"
#include "cpu/branch_predictor.hpp"
#include "mem/cache.hpp"
#include "sim/simulation.hpp"
#include "util/rng.hpp"

using namespace gemfi;

namespace {

void BM_Decode(benchmark::State& state) {
  util::Rng rng(1);
  std::vector<isa::Word> words(4096);
  for (auto& w : words) w = isa::Word(rng.next());
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(isa::decode(words[i++ & 4095]));
  }
}
BENCHMARK(BM_Decode);

void BM_CacheAccess(benchmark::State& state) {
  mem::Cache cache({.size_bytes = 32 * 1024, .line_bytes = 64, .ways = 4});
  util::Rng rng(2);
  std::vector<std::uint64_t> addrs(4096);
  for (auto& a : addrs) a = rng.below(1 << 20);
  std::size_t i = 0;
  for (auto _ : state) {
    const bool is_write = (i & 7) == 0;
    benchmark::DoNotOptimize(cache.access(addrs[i & 4095], is_write));
    ++i;
  }
}
BENCHMARK(BM_CacheAccess);

void BM_PredictorLookupUpdate(benchmark::State& state) {
  cpu::TournamentPredictor pred;
  util::Rng rng(3);
  std::uint64_t pc = 0x2000;
  for (auto _ : state) {
    const auto p = pred.predict(pc);
    const bool taken = rng.chance(0.6);
    pred.update(pc, taken, pc + 64, p.taken != taken);
    pc += 4;
    if (pc > 0x4000) pc = 0x2000;
  }
}
BENCHMARK(BM_PredictorLookupUpdate);

void simulate_app(benchmark::State& state, sim::CpuKind kind, bool fi,
                  bool predecode = true, bool fastpath = true,
                  const char* app_name = "pi", bool mem_bound = false) {
  const apps::App app = apps::build_app(app_name);
  std::uint64_t insts = 0;
  for (auto _ : state) {
    sim::SimConfig cfg;
    cfg.cpu = kind;
    cfg.fi_enabled = fi;
    cfg.predecode = predecode;
    cfg.fastpath = fastpath;
    if (mem_bound) {
      // Stress geometry (cache sizes match the lockstep suite): the working
      // set blows through both levels, and DRAM costs a realistic memory
      // wall (~300 CPU cycles; the default 60 models an older, shallower
      // hierarchy), so stall cycles dominate the tick stream — the regime
      // paper-scale workloads put the timing models in.
      cfg.mem.l1i = {.size_bytes = 1024, .line_bytes = 64, .ways = 2, .hit_latency = 1, .name = "l1i"};
      cfg.mem.l1d = {.size_bytes = 1024, .line_bytes = 64, .ways = 2, .hit_latency = 2, .name = "l1d"};
      cfg.mem.l2 = {.size_bytes = 4096, .line_bytes = 64, .ways = 4, .hit_latency = 10, .name = "l2"};
      cfg.mem.dram_latency = 300;
    }
    sim::Simulation s(cfg, app.program);
    s.spawn_main_thread();
    const auto rr = s.run();
    insts += rr.committed;
  }
  state.counters["insts/s"] =
      benchmark::Counter(double(insts), benchmark::Counter::kIsRate);
}

// The Sim* rows pair up as the A/B comparisons for the two host-side fast
// paths: default rows run the shipping configuration; NoPredecode rows
// disable the predecoded-instruction cache (live fetch+decode on every
// instruction); NoFastpath rows disable the timing-model fast lane (MRU
// cache hits, the fetch line buffer, stall-cycle warping, the batched
// TimingSimple loop) — the `--no-fastpath` per-tick reference.
void BM_SimAtomic(benchmark::State& state) {
  simulate_app(state, sim::CpuKind::AtomicSimple, false);
}
BENCHMARK(BM_SimAtomic)->Unit(benchmark::kMillisecond);

void BM_SimAtomicNoPredecode(benchmark::State& state) {
  simulate_app(state, sim::CpuKind::AtomicSimple, false, /*predecode=*/false);
}
BENCHMARK(BM_SimAtomicNoPredecode)->Unit(benchmark::kMillisecond);

void BM_SimTiming(benchmark::State& state) {
  simulate_app(state, sim::CpuKind::TimingSimple, false);
}
BENCHMARK(BM_SimTiming)->Unit(benchmark::kMillisecond);

void BM_SimTimingNoFastpath(benchmark::State& state) {
  simulate_app(state, sim::CpuKind::TimingSimple, false, /*predecode=*/true,
               /*fastpath=*/false);
}
BENCHMARK(BM_SimTimingNoFastpath)->Unit(benchmark::kMillisecond);

void BM_SimPipelined(benchmark::State& state) {
  simulate_app(state, sim::CpuKind::Pipelined, false);
}
BENCHMARK(BM_SimPipelined)->Unit(benchmark::kMillisecond);

void BM_SimPipelinedNoPredecode(benchmark::State& state) {
  simulate_app(state, sim::CpuKind::Pipelined, false, /*predecode=*/false);
}
BENCHMARK(BM_SimPipelinedNoPredecode)->Unit(benchmark::kMillisecond);

void BM_SimPipelinedNoFastpath(benchmark::State& state) {
  simulate_app(state, sim::CpuKind::Pipelined, false, /*predecode=*/true,
               /*fastpath=*/false);
}
BENCHMARK(BM_SimPipelinedNoFastpath)->Unit(benchmark::kMillisecond);

// MemBound rows: deblock on the small stress caches — compute-light, miss-
// heavy, so nearly every tick sits in a cache/DRAM stall. This is where the
// stall-warping half of the fast lane carries the speedup (the default rows
// above are L1-resident and mostly measure the MRU/batch half).
void BM_SimTimingMemBound(benchmark::State& state) {
  simulate_app(state, sim::CpuKind::TimingSimple, false, /*predecode=*/true,
               /*fastpath=*/true, "deblock", /*mem_bound=*/true);
}
BENCHMARK(BM_SimTimingMemBound)->Unit(benchmark::kMillisecond);

void BM_SimTimingMemBoundNoFastpath(benchmark::State& state) {
  simulate_app(state, sim::CpuKind::TimingSimple, false, /*predecode=*/true,
               /*fastpath=*/false, "deblock", /*mem_bound=*/true);
}
BENCHMARK(BM_SimTimingMemBoundNoFastpath)->Unit(benchmark::kMillisecond);

void BM_SimPipelinedMemBound(benchmark::State& state) {
  simulate_app(state, sim::CpuKind::Pipelined, false, /*predecode=*/true,
               /*fastpath=*/true, "deblock", /*mem_bound=*/true);
}
BENCHMARK(BM_SimPipelinedMemBound)->Unit(benchmark::kMillisecond);

void BM_SimPipelinedMemBoundNoFastpath(benchmark::State& state) {
  simulate_app(state, sim::CpuKind::Pipelined, false, /*predecode=*/true,
               /*fastpath=*/false, "deblock", /*mem_bound=*/true);
}
BENCHMARK(BM_SimPipelinedMemBoundNoFastpath)->Unit(benchmark::kMillisecond);

void BM_SimPipelinedFiEnabled(benchmark::State& state) {
  simulate_app(state, sim::CpuKind::Pipelined, true);
}
BENCHMARK(BM_SimPipelinedFiEnabled)->Unit(benchmark::kMillisecond);

void BM_CheckpointCapture(benchmark::State& state) {
  const apps::App app = apps::build_app("pi");
  sim::SimConfig cfg;
  cfg.cpu = sim::CpuKind::AtomicSimple;
  sim::Simulation s(cfg, app.program);
  s.spawn_main_thread();
  std::size_t bytes = 0;
  for (auto _ : state) {
    const auto ckpt = chkpt::Checkpoint::capture(s);
    bytes += ckpt.size_bytes();
    benchmark::DoNotOptimize(ckpt);
  }
  state.SetBytesProcessed(std::int64_t(bytes));
}
BENCHMARK(BM_CheckpointCapture)->Unit(benchmark::kMillisecond);

void BM_CheckpointRestore(benchmark::State& state) {
  const apps::App app = apps::build_app("pi");
  sim::SimConfig cfg;
  cfg.cpu = sim::CpuKind::AtomicSimple;
  sim::Simulation s(cfg, app.program);
  s.spawn_main_thread();
  const auto ckpt = chkpt::Checkpoint::capture(s);
  std::size_t bytes = 0;
  for (auto _ : state) {
    ckpt.restore_into(s);
    bytes += ckpt.size_bytes();
  }
  state.SetBytesProcessed(std::int64_t(bytes));
}
BENCHMARK(BM_CheckpointRestore)->Unit(benchmark::kMillisecond);

void BM_FaultParse(benchmark::State& state) {
  const std::string line =
      "RegisterInjectedFault Inst:2457 Flip:21 Threadid:0 system.cpu1 occ:1 int 1";
  for (auto _ : state) benchmark::DoNotOptimize(fi::parse_fault(line));
}
BENCHMARK(BM_FaultParse);

/// ConsoleReporter that additionally copies every reported run into the
/// shared JSON sink (bench/common), so `--json=<path>` emits the same
/// machine-readable BENCH_*.json document as the figure benches.
class JsonRecordingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      const std::string name = run.benchmark_name();
      bench::json_record(name + ".real_time", run.GetAdjustedRealTime(),
                         benchmark::GetTimeUnitString(run.time_unit), "bench_micro");
      bench::json_record(name + ".cpu_time", run.GetAdjustedCPUTime(),
                         benchmark::GetTimeUnitString(run.time_unit), "bench_micro");
      for (const auto& [cname, counter] : run.counters)
        bench::json_record(name + "." + cname, counter.value, "counter", "bench_micro");
    }
    ConsoleReporter::ReportRuns(runs);
  }
};

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): peel off the repo-local
// --json=<path> flag before google-benchmark sees the command line (it
// rejects unknown flags), then report through the JSON-recording reporter.
int main(int argc, char** argv) {
  std::string json_path;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0)
      json_path = arg.substr(7);
    else
      args.push_back(argv[i]);
  }
  int bench_argc = int(args.size());
  benchmark::Initialize(&bench_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data())) return 1;
  JsonRecordingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return bench::json_write(json_path, "micro") ? 0 : 1;
}
