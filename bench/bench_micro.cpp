// Engineering micro-benchmarks (google-benchmark): not a paper figure, but a
// regression guard on the substrate's hot paths — decoder, execution engine,
// cache model, branch predictor, whole-CPU simulation rates, checkpoint
// capture/restore, and the FaultManager fast path that Fig. 7's overhead
// story depends on.
#include <benchmark/benchmark.h>

#include "apps/app.hpp"
#include "chkpt/checkpoint.hpp"
#include "cpu/branch_predictor.hpp"
#include "mem/cache.hpp"
#include "sim/simulation.hpp"
#include "util/rng.hpp"

using namespace gemfi;

namespace {

void BM_Decode(benchmark::State& state) {
  util::Rng rng(1);
  std::vector<isa::Word> words(4096);
  for (auto& w : words) w = isa::Word(rng.next());
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(isa::decode(words[i++ & 4095]));
  }
}
BENCHMARK(BM_Decode);

void BM_CacheAccess(benchmark::State& state) {
  mem::Cache cache({.size_bytes = 32 * 1024, .line_bytes = 64, .ways = 4});
  util::Rng rng(2);
  std::vector<std::uint64_t> addrs(4096);
  for (auto& a : addrs) a = rng.below(1 << 20);
  std::size_t i = 0;
  for (auto _ : state) {
    const bool is_write = (i & 7) == 0;
    benchmark::DoNotOptimize(cache.access(addrs[i & 4095], is_write));
    ++i;
  }
}
BENCHMARK(BM_CacheAccess);

void BM_PredictorLookupUpdate(benchmark::State& state) {
  cpu::TournamentPredictor pred;
  util::Rng rng(3);
  std::uint64_t pc = 0x2000;
  for (auto _ : state) {
    const auto p = pred.predict(pc);
    const bool taken = rng.chance(0.6);
    pred.update(pc, taken, pc + 64, p.taken != taken);
    pc += 4;
    if (pc > 0x4000) pc = 0x2000;
  }
}
BENCHMARK(BM_PredictorLookupUpdate);

void simulate_app(benchmark::State& state, sim::CpuKind kind, bool fi,
                  bool predecode = true) {
  const apps::App app = apps::build_app("pi");
  std::uint64_t insts = 0;
  for (auto _ : state) {
    sim::SimConfig cfg;
    cfg.cpu = kind;
    cfg.fi_enabled = fi;
    cfg.predecode = predecode;
    sim::Simulation s(cfg, app.program);
    s.spawn_main_thread();
    const auto rr = s.run();
    insts += rr.committed;
  }
  state.counters["insts/s"] =
      benchmark::Counter(double(insts), benchmark::Counter::kIsRate);
}

// The Sim* rows pair up as the predecode on/off comparison: the default rows
// run with the predecoded-instruction cache (the shipping configuration),
// the NoPredecode rows with `--no-predecode` semantics — live fetch+decode
// on every instruction.
void BM_SimAtomic(benchmark::State& state) {
  simulate_app(state, sim::CpuKind::AtomicSimple, false);
}
BENCHMARK(BM_SimAtomic)->Unit(benchmark::kMillisecond);

void BM_SimAtomicNoPredecode(benchmark::State& state) {
  simulate_app(state, sim::CpuKind::AtomicSimple, false, /*predecode=*/false);
}
BENCHMARK(BM_SimAtomicNoPredecode)->Unit(benchmark::kMillisecond);

void BM_SimPipelined(benchmark::State& state) {
  simulate_app(state, sim::CpuKind::Pipelined, false);
}
BENCHMARK(BM_SimPipelined)->Unit(benchmark::kMillisecond);

void BM_SimPipelinedNoPredecode(benchmark::State& state) {
  simulate_app(state, sim::CpuKind::Pipelined, false, /*predecode=*/false);
}
BENCHMARK(BM_SimPipelinedNoPredecode)->Unit(benchmark::kMillisecond);

void BM_SimPipelinedFiEnabled(benchmark::State& state) {
  simulate_app(state, sim::CpuKind::Pipelined, true);
}
BENCHMARK(BM_SimPipelinedFiEnabled)->Unit(benchmark::kMillisecond);

void BM_CheckpointCapture(benchmark::State& state) {
  const apps::App app = apps::build_app("pi");
  sim::SimConfig cfg;
  cfg.cpu = sim::CpuKind::AtomicSimple;
  sim::Simulation s(cfg, app.program);
  s.spawn_main_thread();
  std::size_t bytes = 0;
  for (auto _ : state) {
    const auto ckpt = chkpt::Checkpoint::capture(s);
    bytes += ckpt.size_bytes();
    benchmark::DoNotOptimize(ckpt);
  }
  state.SetBytesProcessed(std::int64_t(bytes));
}
BENCHMARK(BM_CheckpointCapture)->Unit(benchmark::kMillisecond);

void BM_CheckpointRestore(benchmark::State& state) {
  const apps::App app = apps::build_app("pi");
  sim::SimConfig cfg;
  cfg.cpu = sim::CpuKind::AtomicSimple;
  sim::Simulation s(cfg, app.program);
  s.spawn_main_thread();
  const auto ckpt = chkpt::Checkpoint::capture(s);
  std::size_t bytes = 0;
  for (auto _ : state) {
    ckpt.restore_into(s);
    bytes += ckpt.size_bytes();
  }
  state.SetBytesProcessed(std::int64_t(bytes));
}
BENCHMARK(BM_CheckpointRestore)->Unit(benchmark::kMillisecond);

void BM_FaultParse(benchmark::State& state) {
  const std::string line =
      "RegisterInjectedFault Inst:2457 Flip:21 Threadid:0 system.cpu1 occ:1 int 1";
  for (auto _ : state) benchmark::DoNotOptimize(fi::parse_fault(line));
}
BENCHMARK(BM_FaultParse);

}  // namespace

BENCHMARK_MAIN();
