// Fig. 8 reproduction: effect of the GemFI optimizations on fault-injection
// campaign execution time (paper Sec. V, log-scale chart):
//   1. campaign without fast-forwarding (every experiment re-simulates boot
//      + application initialization);
//   2. campaign fast-forwarded from the fi_read_init_all() checkpoint
//      (paper: 3x-244x, average 64.5x, depending on the pre/post-checkpoint
//      time ratio);
//   3. campaign on a network of 27 workstations x 4 slots (paper: a further
//      ~108x, consistent with the number of simultaneous experiments).
//
// One host cannot provide 108 cores, so (3) reports two numbers side by
// side: the modeled makespan of the measured per-experiment durations on the
// paper's cluster geometry (campaign/now_runner.hpp), and the *measured*
// wall time of a real multi-process run through the NoW dispatch service
// (campaign/dispatch.hpp: a TCP master plus forked worker processes, each
// restoring the shipped checkpoint). On a many-core host the measured
// column approaches workers x slots; on the paper's 27x4 cluster the same
// service is what would deliver the ~108x.
// A fourth section, "sequential sizing", reproduces the statistical side of
// campaign cost (EXPERIMENTS.md): the fixed design runs
// util::required_sample_size(...) experiments (Leveugle's worst-case p=0.5
// formula); the sequential rule (campaign::Aggregator, --stop-ci) stops the
// same seeded campaign at the first index-ordered prefix whose
// finite-population-corrected Wilson half-widths all fit eps@conf. The bench
// runs the full fixed campaign once, replays it through the aggregator to
// find the stop index, and reports experiments saved plus the worst-case
// disagreement between the stop-prefix and full-campaign proportions.
// GEMFI_SEQ_SIZING=EPS@CONF overrides the per-mode default (quick/default:
// 0.05@0.95; --full: the paper-scale 0.01@0.99).
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "campaign/analytics/aggregator.hpp"
#include "campaign/dispatch.hpp"
#include "campaign/observer.hpp"
#include "common.hpp"
#include "util/stats.hpp"

using namespace gemfi;

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv);
  bench::print_header("Fig. 8: campaign time without/with checkpointing and on a NoW");

  const std::size_t n = opt.per_cell(12, 4, 200);
  std::printf("  experiments per campaign: %zu (paper: ~2500)\n\n", n);
  // Measured NoW geometry: small enough to run everywhere, real enough to
  // show multi-process scaling when cores exist.
  const unsigned now_workers = 4, now_slots = 1;
  std::printf("%-10s %12s %12s %10s %14s %10s %12s %10s %12s\n", "app", "no-ff(s)",
              "ckpt(s)", "speedup", "now-model(s)", "now-par", "now-meas(s)",
              "meas-par", "init-frac");

  // Sequential-sizing policy: paper precision under --full, a CI-sized
  // 95%/5% otherwise; GEMFI_SEQ_SIZING=EPS@CONF overrides either.
  campaign::StopPolicy seq_policy;
  if (const char* env = std::getenv("GEMFI_SEQ_SIZING")) {
    seq_policy = campaign::parse_stop_ci(env);
  } else {
    seq_policy = opt.full ? campaign::parse_stop_ci("0.01@0.99")
                          : campaign::parse_stop_ci("0.05@0.95");
  }
  // Fixed comparator: Leveugle's worst-case (p = 0.5) sample size over an
  // effectively unbounded fault space (fetch x bit x cycle); 1e9 is within
  // 0.02% of the infinite-population (t/2e)^2.
  const std::size_t seq_fixed_n = util::required_sample_size(
      1'000'000'000ull, seq_policy.eps, seq_policy.confidence);

  auto cfg = opt.campaign_config();
  // GEMFI_JSONL=<path-prefix> streams per-experiment telemetry records from
  // the checkpointed campaign of every app to <prefix>-<app>.jsonl.
  const char* jsonl_prefix = std::getenv("GEMFI_JSONL");
  for (const std::string& name : opt.app_list()) {
    const auto ca = campaign::calibrate(apps::build_app(name, opt.scale()), cfg);
    // Per-experiment seeding: experiment i of this campaign is replayable in
    // isolation via `gemfi_cli --app=<name> --replay=i --seed=<seed>`.
    const std::uint64_t app_seed = opt.seed ^ (std::hash<std::string>{}(name) * 7);
    cfg.campaign_seed = app_seed;
    const auto faults = campaign::seeded_fault_set(app_seed, n, ca.kernel_fetches);

    auto no_ff_cfg = cfg;
    no_ff_cfg.use_checkpoint = false;
    const auto no_ff = campaign::run_campaign(ca, faults, no_ff_cfg);

    auto ff_cfg = cfg;
    ff_cfg.use_checkpoint = true;
    std::unique_ptr<campaign::JsonlSink> sink;
    if (jsonl_prefix) {
      sink = std::make_unique<campaign::JsonlSink>(std::string(jsonl_prefix) + "-" +
                                                   name + ".jsonl");
      ff_cfg.observer = sink.get();
    }
    const auto ff = campaign::run_campaign(ca, faults, ff_cfg);
    ff_cfg.observer = nullptr;

    campaign::NowConfig now;  // paper geometry: 27 workstations x 4 slots
    const auto dist = campaign::run_campaign_now(ca, faults, ff_cfg, now);

    // Measured: the same campaign through the real dispatch service with
    // forked loopback worker processes (checkpoint shipped over TCP).
    const auto meas =
        campaign::run_campaign_service_local(ca, opt.scale(), faults, ff_cfg,
                                             now_workers, now_slots);

    const double ckpt_speedup = ff.wall_seconds > 0 ? no_ff.wall_seconds / ff.wall_seconds : 0;
    // Effective parallelism on the cluster: total serial experiment work
    // divided by the modeled makespan. Saturates at min(n, 108); the paper's
    // ~108x needs campaigns much longer than the slot count (theirs: ~2500).
    double total_work = 0;
    for (const auto& er : dist.campaign.results) total_work += er.wall_seconds;
    const double now_par = dist.modeled_makespan_seconds > 0
                               ? total_work / dist.modeled_makespan_seconds
                               : 0;
    // Measured effective parallelism: serial work done by the worker
    // processes divided by the service's wall time (bounded by host cores).
    // The dispatch master streams results without retaining them, so the
    // serial-work sum comes from its incremental accumulator.
    const double meas_par = meas.wall_seconds > 0
                                ? meas.experiment_wall_seconds / meas.wall_seconds
                                : 0;
    const double init_frac = double(ca.ticks_to_checkpoint) / double(ca.golden_ticks);
    std::printf("%-10s %12.2f %12.2f %9.1fx %14.3f %9.1fx %12.2f %9.1fx %12.2f\n",
                name.c_str(), no_ff.wall_seconds, ff.wall_seconds, ckpt_speedup,
                dist.modeled_makespan_seconds, now_par, meas.wall_seconds, meas_par,
                init_frac);
    bench::json_record("noff_wall_seconds", no_ff.wall_seconds, "s", name);
    bench::json_record("ckpt_wall_seconds", ff.wall_seconds, "s", name);
    bench::json_record("ckpt_speedup", ckpt_speedup, "x", name);
    bench::json_record("now_modeled_makespan_seconds", dist.modeled_makespan_seconds,
                       "s", name);
    bench::json_record("now_measured_wall_seconds", meas.wall_seconds, "s",
                       name + "/w" + std::to_string(now_workers));
    bench::json_record("now_measured_parallelism", meas_par, "x",
                       name + "/w" + std::to_string(now_workers));

    // Sanity: outcome distributions must agree between all four modes.
    for (unsigned o = 0; o < apps::kNumOutcomes; ++o) {
      if (no_ff.counts[o] != ff.counts[o] || ff.counts[o] != dist.campaign.counts[o] ||
          dist.campaign.counts[o] != meas.campaign.counts[o]) {
        std::printf("  WARNING: outcome mismatch between campaign modes (class %u)\n", o);
        break;
      }
    }

    // --- Sequential sizing: run the fixed-size campaign once, replay it in
    // index order through the aggregator, and compare the stop prefix's
    // answer with the full campaign's. The bench pays the full fixed cost to
    // *validate* agreement; production campaigns stop at seq-n.
    const auto seq_faults =
        campaign::seeded_fault_set(app_seed, seq_fixed_n, ca.kernel_fetches);
    const auto seq = campaign::run_campaign(ca, seq_faults, ff_cfg);
    campaign::Aggregator agg(seq_policy, seq_faults.size());
    double stop_wall = 0.0;
    for (std::size_t i = 0; i < seq.results.size(); ++i) {
      campaign::ExperimentRecord rec;
      rec.index = i;
      rec.seed = campaign::experiment_seed(ff_cfg.campaign_seed, i);
      rec.result = seq.results[i];
      agg.add(rec);
      if (!agg.should_stop()) stop_wall += seq.results[i].wall_seconds;
    }
    const std::uint64_t stop_n =
        agg.should_stop() ? agg.stop_index() : std::uint64_t(seq_fixed_n);
    const double saved_frac =
        seq_fixed_n ? 1.0 - double(stop_n) / double(seq_fixed_n) : 0.0;
    // Worst-case disagreement between the stop prefix's proportions and the
    // full fixed campaign's — the quantity the rule bounds by eps @ conf.
    double max_err = 0.0;
    for (unsigned o = 0; o < apps::kNumOutcomes; ++o) {
      const double p_stop = stop_n ? double(agg.prefix_counts()[o]) / double(stop_n) : 0;
      const double p_full =
          agg.n() ? double(agg.outcome_counts()[o]) / double(agg.n()) : 0;
      max_err = std::max(max_err, std::fabs(p_stop - p_full));
    }
    const bool within = max_err <= seq_policy.eps;
    std::printf(
        "  seq-sizing %s: fixed n=%zu (%.3g@%.3g) -> stop at %llu (%.1f%% saved, "
        "%.2fs wall), max |p_stop - p_full| = %.4f %s eps\n",
        name.c_str(), seq_fixed_n, seq_policy.eps, seq_policy.confidence,
        (unsigned long long)stop_n, 100.0 * saved_frac, stop_wall, max_err,
        within ? "<=" : "EXCEEDS");
    bench::json_record("seq_fixed_n", double(seq_fixed_n), "count", name);
    bench::json_record("seq_stop_n", double(stop_n), "count", name);
    bench::json_record("seq_saved_frac", saved_frac, "x", name);
    bench::json_record("seq_agreement_err", max_err, "frac", name);
  }
  std::printf(
      "\n  paper: checkpoint fast-forwarding gives 3x-244x (avg 64.5x), governed by\n"
      "  the pre/post-checkpoint time ratio (init-frac column); the NoW adds ~108x\n"
      "  (27 workstations x 4 simultaneous experiments). The checkpoint speedup\n"
      "  here scales with init-frac the same way; now-par is the effective\n"
      "  parallelism of the modeled 27x4 cluster, which saturates at min(n, 108)\n"
      "  — run with --n=216 or --full to see it approach the paper's ~108x.\n"
      "  now-meas is a real multi-process run through the TCP dispatch service\n"
      "  (4 forked workers); meas-par is bounded by this host's cores, not the\n"
      "  paper's cluster.\n");
  return bench::json_write(opt.json, "fig8_campaign") ? 0 : 1;
}
