// Ablation / future-work bench (paper Sec. VII): the Vdd-vs-correctness
// sweep the paper's conclusion proposes. Not a figure of the paper — this is
// the study GemFI was built to enable: aggressively lower the supply
// voltage, let the exponential low-voltage upset model inject
// Poisson-distributed SEUs over the kernel, and chart relative power against
// the fraction of acceptable results per application.
#include <cstdio>

#include "common.hpp"
#include "fi/vdd_model.hpp"

using namespace gemfi;

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv);
  bench::print_header("Vdd sweep: power savings vs application correctness "
                      "(paper Sec. VII future work)");

  const auto cfg = opt.campaign_config();
  const std::size_t runs = opt.per_cell(20, 6, 200);
  const fi::VddModel model;
  const double levels[] = {1.00, 0.90, 0.85, 0.80, 0.75, 0.70, 0.65, 0.60};
  std::printf("  %zu runs per (app, Vdd) level; upset model: rate(vmin)=%g/inst,\n"
              "  exponential steepness beta=%g over [%.2f, %.2f] V\n\n",
              runs, model.config().rate_at_vmin, model.config().beta,
              model.config().vmin, model.config().vnom);

  const std::vector<std::string> sweep_apps =
      opt.apps.empty() ? std::vector<std::string>{"dct", "jacobi", "pi"} : opt.apps;

  for (const std::string& name : sweep_apps) {
    const auto ca = campaign::calibrate(apps::build_app(name, opt.scale()), cfg);
    std::printf("-- %s (kernel %llu insts) --\n", name.c_str(),
                (unsigned long long)ca.kernel_fetches);
    std::printf("%6s %8s %12s %10s %12s %8s\n", "Vdd", "power%", "upsets/run",
                "accept%", "crash%", "sdc%");
    util::Rng rng(opt.seed ^ std::hash<std::string>{}(name));
    for (const double vdd : levels) {
      std::size_t outcomes[apps::kNumOutcomes] = {};
      double total_faults = 0;
      for (std::size_t r = 0; r < runs; ++r) {
        const auto faults = model.sample_faults(rng, vdd, ca.kernel_fetches);
        total_faults += double(faults.size());
        if (faults.empty()) {
          ++outcomes[std::size_t(apps::Outcome::StrictlyCorrect)];
          continue;
        }
        // One experiment carries the whole Poisson batch of upsets.
        sim::SimConfig scfg;
        scfg.cpu = cfg.cpu;
        scfg.switch_to_atomic_after_fault = faults.size() == 1;
        sim::Simulation s(scfg, ca.app.program);
        s.spawn_main_thread();
        ca.checkpoint.restore_into(s);
        s.fault_manager().load_faults(faults);
        const auto rr = s.run(cfg.watchdog_mult * ca.golden_ticks + 1'000'000);
        const auto c = campaign::classify(ca.app, rr, s.fault_manager(), s.output(0));
        ++outcomes[std::size_t(c.outcome)];
      }
      const double accept =
          double(outcomes[std::size_t(apps::Outcome::StrictlyCorrect)] +
                 outcomes[std::size_t(apps::Outcome::Correct)] +
                 outcomes[std::size_t(apps::Outcome::NonPropagated)]) /
          double(runs);
      std::printf("%6.2f %8.1f %12.2f %10.1f %12.1f %8.1f\n", vdd,
                  100.0 * model.relative_power(vdd), total_faults / double(runs),
                  100.0 * accept,
                  100.0 * double(outcomes[std::size_t(apps::Outcome::Crashed)]) / double(runs),
                  100.0 * double(outcomes[std::size_t(apps::Outcome::SDC)]) / double(runs));
    }
    std::printf("\n");
  }
  std::printf("  reading: each application has a voltage cliff — power falls\n"
              "  quadratically while correctness holds, then upsets pile up and\n"
              "  acceptability collapses; error-tolerant kernels ride lower Vdd.\n");
  return bench::json_write(opt.json, "vdd_sweep") ? 0 : 1;
}
