// Fig. 6 reproduction: correlation of fault-injection timing with the effect
// on the application (paper Sec. IV-B-2, last part).
//
// Faults (uniform location/bit) are injected at controlled points across the
// kernel's life; experiments are bucketed by normalized injection time into
// deciles and the per-bucket outcome fractions are printed.
// Shape targets from the paper:
//   * PI: timing uncorrelated with outcome (every iteration contributes
//     equally to the estimate);
//   * Knapsack: the later the fault, the more acceptable results (selection
//     discards corrupted candidates; the effect compounds per generation);
//   * Jacobi: later faults trade strictly-correct for (relaxed) correct —
//     convergence self-heals data corruption at the cost of iterations.
#include <cstdio>

#include "common.hpp"

using namespace gemfi;

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv);
  bench::print_header("Fig. 6: fault timing vs application behavior");

  const auto cfg = opt.campaign_config();
  constexpr unsigned kBuckets = 10;
  const std::size_t n = opt.per_cell(30, 6, 250);
  std::printf("  experiments per (app, time-decile): %zu\n", n);

  const std::vector<std::string> fig6_apps =
      opt.apps.empty() ? std::vector<std::string>{"pi", "knapsack", "jacobi"}
                       : opt.apps;

  for (const std::string& name : fig6_apps) {
    const auto ca = campaign::calibrate(apps::build_app(name, opt.scale()), cfg);
    std::printf("-- %s --\n", name.c_str());
    std::printf("%-8s %9s %9s %8s %9s %6s %12s\n", "time", "crashed%", "nonprop%",
                "strict%", "correct%", "sdc%", "acceptable%");

    util::Rng rng(opt.seed ^ (std::hash<std::string>{}(name) * 3));
    for (unsigned b = 0; b < kBuckets; ++b) {
      std::vector<fi::Fault> faults;
      faults.reserve(n);
      const std::uint64_t lo = 1 + b * ca.kernel_fetches / kBuckets;
      const std::uint64_t hi = (b + 1) * ca.kernel_fetches / kBuckets;
      for (std::size_t i = 0; i < n; ++i) {
        fi::Fault f = campaign::random_fault_any(rng, ca.kernel_fetches);
        f.time = lo + rng.below(hi > lo ? hi - lo : 1);
        faults.push_back(f);
      }
      const auto report = campaign::run_campaign(ca, faults, cfg);
      // "Acceptable" in the paper = union of correct and strictly correct;
      // non-propagated faults also leave the output acceptable.
      const double acceptable =
          report.fraction(apps::Outcome::StrictlyCorrect) +
          report.fraction(apps::Outcome::Correct) +
          report.fraction(apps::Outcome::NonPropagated);
      char label[16];
      std::snprintf(label, sizeof label, "%2u0%%", b + 1);
      std::printf("%-8s %9.1f %9.1f %8.1f %9.1f %6.1f %12.1f\n", label,
                  100.0 * report.fraction(apps::Outcome::Crashed),
                  100.0 * report.fraction(apps::Outcome::NonPropagated),
                  100.0 * report.fraction(apps::Outcome::StrictlyCorrect),
                  100.0 * report.fraction(apps::Outcome::Correct),
                  100.0 * report.fraction(apps::Outcome::SDC), 100.0 * acceptable);
    }
    std::printf("\n");
  }
  return bench::json_write(opt.json, "fig6_timing") ? 0 : 1;
}
