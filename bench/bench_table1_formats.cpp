// Table I reproduction: the Alpha instruction formats, plus an exhaustive
// encode/decode round-trip validation of every implemented opcode and
// function code (the fetch-stage fault analysis of Sec. IV-B depends on
// these exact field boundaries).
#include <cinttypes>
#include <cstdio>

#include "common.hpp"
#include "isa/disasm.hpp"

using namespace gemfi;

namespace {

struct Row {
  const char* kind;
  const char* layout;
};

void print_table1() {
  bench::print_header("Table I: uAlpha (Alpha AXP) instruction formats");
  const Row rows[] = {
      {"PALcode", "opcode[31:26] | palcode number[25:0]"},
      {"Branch", "opcode[31:26] | Ra[25:21] | branch displacement[20:0]"},
      {"Memory", "opcode[31:26] | Ra[25:21] | Rb[20:16] | displacement[15:0]"},
      {"Operate (register)",
       "opcode[31:26] | Ra[25:21] | Rb[20:16] | SBZ[15:13] | 0[12] | func[11:5] | Rc[4:0]"},
      {"Operate (literal)",
       "opcode[31:26] | Ra[25:21] | LIT[20:13] | 1[12] | func[11:5] | Rc[4:0]"},
      {"FP operate", "opcode[31:26] | Fa[25:21] | Fb[20:16] | func[15:5] | Fc[4:0]"},
  };
  for (const Row& r : rows) std::printf("  %-20s %s\n", r.kind, r.layout);
}

unsigned roundtrip_all() {
  unsigned count = 0;
  const auto check = [&](isa::Word w) {
    const isa::Decoded d = isa::decode(w);
    if (!d.valid) {
      std::printf("  ROUND-TRIP FAILURE: 0x%08x decodes invalid\n", w);
      std::exit(1);
    }
    ++count;
  };

  // All integer operate function codes, register and literal forms.
  const unsigned inta[] = {0x00, 0x22, 0x09, 0x32, 0x20, 0x29, 0x1D, 0x2D, 0x3D, 0x4D, 0x6D};
  const unsigned intl[] = {0x00, 0x08, 0x14, 0x16, 0x20, 0x24, 0x26, 0x28,
                           0x40, 0x44, 0x46, 0x48, 0x64, 0x66};
  const unsigned ints[] = {0x34, 0x39, 0x3C};
  const unsigned intm[] = {0x00, 0x20, 0x30, 0x40, 0x41};
  for (const unsigned f : inta) {
    check(isa::encode_operate(isa::Opcode::INTA, f, 1, 2, 3));
    check(isa::encode_operate_lit(isa::Opcode::INTA, f, 1, 200, 3));
  }
  for (const unsigned f : intl) check(isa::encode_operate(isa::Opcode::INTL, f, 4, 5, 6));
  for (const unsigned f : ints) check(isa::encode_operate(isa::Opcode::INTS, f, 7, 8, 9));
  for (const unsigned f : intm) check(isa::encode_operate(isa::Opcode::INTM, f, 1, 2, 3));

  const unsigned flti[] = {0x0A0, 0x0A1, 0x0A2, 0x0A3, 0x0A4, 0x0A5,
                           0x0A6, 0x0A7, 0x0AB, 0x0AF, 0x0BE};
  for (const unsigned f : flti) check(isa::encode_fp(isa::Opcode::FLTI, f, 1, 2, 3));
  const unsigned fltl[] = {0x020, 0x021, 0x02A, 0x02B};
  for (const unsigned f : fltl) check(isa::encode_fp(isa::Opcode::FLTL, f, 1, 2, 3));
  check(isa::encode_fp(isa::Opcode::ITOF, 0x024, 1, 31, 2));
  check(isa::encode_fp(isa::Opcode::FTOI, 0x070, 1, 31, 2));

  const isa::Opcode mems[] = {isa::Opcode::LDA, isa::Opcode::LDAH, isa::Opcode::LDL,
                              isa::Opcode::LDQ, isa::Opcode::STL,  isa::Opcode::STQ,
                              isa::Opcode::LDS, isa::Opcode::LDT,  isa::Opcode::STS,
                              isa::Opcode::STT};
  for (const isa::Opcode op : mems) check(isa::encode_mem(op, 1, 2, -1234));
  for (unsigned k = 0; k < 4; ++k)
    check(isa::encode_jump(static_cast<isa::JumpKind>(k), 26, 27));

  const isa::Opcode branches[] = {
      isa::Opcode::BR,   isa::Opcode::BSR,  isa::Opcode::BEQ,  isa::Opcode::BNE,
      isa::Opcode::BLT,  isa::Opcode::BLE,  isa::Opcode::BGE,  isa::Opcode::BGT,
      isa::Opcode::BLBS, isa::Opcode::BLBC, isa::Opcode::FBEQ, isa::Opcode::FBNE,
      isa::Opcode::FBLT, isa::Opcode::FBLE, isa::Opcode::FBGE, isa::Opcode::FBGT};
  for (const isa::Opcode op : branches) check(isa::encode_branch(op, 9, -4000));

  check(isa::encode_pal(isa::Opcode::CALL_PAL, 0x0000));
  check(isa::encode_pal(isa::Opcode::CALL_PAL, 0x0083));
  for (unsigned n = 0; n <= 7; ++n) check(isa::encode_pal(isa::Opcode::PSEUDO, n));
  return count;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv);
  print_table1();

  const unsigned n = roundtrip_all();
  std::printf("\n  encode/decode round-trip: %u encodings validated\n", n);

  // Show the field extraction on the paper's Listing-1 example target
  // (register R1 of cpu1, bit 21) rendered through the disassembler.
  const isa::Word w = isa::encode_operate_lit(isa::Opcode::INTA, 0x20, 1, 8, 1);
  const isa::Decoded d = isa::decode(w);
  std::printf("  example: 0x%08x = %s (opcode=0x%02x func=0x%02x lit=%u)\n", w,
              isa::disassemble(d).c_str(), unsigned(d.opcode), d.func, d.literal);
  return bench::json_write(opt.json, "table1_formats") ? 0 : 1;
}
