// Fault-model taxonomy: outcome distribution vs fault MODEL, per
// application — the Fig. 4/5-style experiment extended beyond the paper's
// transient SEUs to the full model family (stuck-at, intermittent, burst,
// attack).
//
// For each app and each model family we run a campaign of seeded random
// faults drawn by campaign::random_model_fault and print the outcome
// distribution. Shape expectations:
//   * transient rows reproduce the paper's Fig. 5 Total columns;
//   * stuck-at (permanent, re-asserted every boundary) crashes or corrupts
//     far more often than a one-shot transient at the same location;
//   * intermittent falls between the two, scaling with its duty fraction;
//   * burst (multi-bit) faults lower the non-propagated fraction — wider
//     corruption is harder to mask;
//   * attack experiments (instruction skip / opcode corruption) report in
//     the attack% column: runs that terminated normally with an altered
//     output, the adversary's success criterion. The aes app is the natural
//     target here (differential fault analysis needs exactly such runs).
#include <cstdio>

#include "common.hpp"

using namespace gemfi;

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv);
  bench::print_header("Fault-model taxonomy: outcome distribution vs fault model");

  const auto cfg = opt.campaign_config();
  const std::size_t n = opt.per_cell(40, 8, 500);
  std::printf("  experiments per (app, model) cell: %zu\n\n", n);

  for (const std::string& name : opt.app_list()) {
    const auto ca = campaign::calibrate(apps::build_app(name, opt.scale()), cfg);
    std::printf("-- %s (kernel: %llu fetched insts) --\n", name.c_str(),
                (unsigned long long)ca.kernel_fetches);
    bench::print_outcome_legend();

    campaign::CampaignReport total;
    util::Rng rng(opt.seed ^ std::hash<std::string>{}(name));
    for (unsigned ki = 0; ki < fi::kNumFaultModelKinds; ++ki) {
      const auto kind = static_cast<fi::FaultModelKind>(ki);
      std::vector<fi::Fault> faults;
      faults.reserve(n);
      for (std::size_t i = 0; i < n; ++i)
        faults.push_back(campaign::random_model_fault(rng, kind, ca.kernel_fetches));
      const auto report = campaign::run_campaign(ca, faults, cfg);
      bench::print_outcome_row(std::string("  ") + fi::fault_model_kind_name(kind),
                               report);
      for (unsigned o = 0; o < apps::kNumOutcomes; ++o) total.counts[o] += report.counts[o];
      total.wall_seconds += report.wall_seconds;
    }
    bench::print_outcome_row("  TOTAL", total);
    std::printf("  campaign wall time: %.1f s\n\n", total.wall_seconds);
  }
  return bench::json_write(opt.json, "models_taxonomy") ? 0 : 1;
}
