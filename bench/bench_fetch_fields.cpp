// Fetch-stage field analysis — the Table-I-driven validation of Sec. IV-B:
// "we correlated the affected bit location and the instruction type with the
// end result of the application".
//
// For every fetch-stage experiment we decode the *original* instruction word
// at the fault site, classify which Table-I field the flipped bit landed in
// (per that instruction's format), and tabulate outcomes per field.
// Shape targets from the paper:
//   * faults in unused bits (the SBZ field of register-form operates) are
//     always strictly correct;
//   * opcode/function faults that produce unimplemented encodings always
//     kill the program with an illegal instruction;
//   * memory-instruction displacement/base faults crash with high
//     probability; branch displacement faults on not-taken branches are
//     harmless.
#include <array>
#include <cstdio>
#include <map>

#include "common.hpp"
#include "isa/decoder.hpp"

using namespace gemfi;

namespace {

const char* classify_bit(const isa::Decoded& d, unsigned bit) {
  if (bit >= 26) return "opcode";
  switch (d.format) {
    case isa::Format::PalCode:
      return "palnum";
    case isa::Format::Branch:
      return bit >= 21 ? "Ra" : "branch-disp";
    case isa::Format::Memory:
      if (bit >= 21) return "Ra";
      if (bit >= 16) return "Rb";
      return "mem-disp";
    case isa::Format::Operate:
      if (bit >= 21) return "Ra";
      if (bit == 12) return "lit-flag";
      if (bit >= 13) return d.is_literal ? "literal" : (bit >= 16 ? "Rb" : "SBZ");
      if (bit >= 5) return "function";
      return "Rc";
    case isa::Format::FpOperate:
      if (bit >= 21) return "Fa";
      if (bit >= 16) return "Fb";
      if (bit >= 5) return "function";
      return "Fc";
    case isa::Format::Unknown:
      return "other";
  }
  return "other";
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv);
  bench::print_header(
      "Fetch-stage fault analysis by Table-I field (Sec. IV-B validation)");

  const auto cfg = opt.campaign_config();
  const std::size_t n = opt.per_cell(400, 60, 2504);
  const std::string app_name = opt.apps.empty() ? "dct" : opt.apps.front();
  const auto ca = campaign::calibrate(apps::build_app(app_name, opt.scale()), cfg);
  std::printf("  app: %s, %zu uniform fetch-stage bit flips\n\n", app_name.c_str(), n);

  struct Cell {
    std::array<std::size_t, apps::kNumOutcomes> counts{};
    std::size_t total = 0;
  };
  std::map<std::string, Cell> table;

  util::Rng rng(opt.seed ^ 0xfe7c);
  for (std::size_t i = 0; i < n; ++i) {
    const fi::Fault f = campaign::random_fault(rng, fi::FaultLocation::Fetch,
                                               ca.kernel_fetches);
    // Re-run the experiment but keep the manager state to read the original
    // word at the fault site.
    sim::SimConfig scfg;
    scfg.cpu = cfg.cpu;
    scfg.switch_to_atomic_after_fault = true;
    sim::Simulation s(scfg, ca.app.program);
    s.spawn_main_thread();
    ca.checkpoint.restore_into(s);
    s.fault_manager().load_faults({f});
    const auto rr = s.run(cfg.watchdog_mult * ca.golden_ticks + 1'000'000);
    const auto c = campaign::classify(ca.app, rr, s.fault_manager(), s.output(0));

    const auto& st = s.fault_manager().states()[0];
    const char* field = "not-injected";
    if (st.applied > 0) {
      const isa::Decoded original = isa::decode(isa::Word(st.original_value));
      field = classify_bit(original, unsigned(f.operand % 32));
    }
    Cell& cell = table[field];
    ++cell.counts[std::size_t(c.outcome)];
    ++cell.total;
  }

  bench::print_outcome_legend();
  for (const auto& [field, cell] : table) {
    std::printf("%-22s", field.c_str());
    for (unsigned o = 0; o < apps::kNumOutcomes; ++o)
      std::printf(" %8.1f", 100.0 * double(cell.counts[o]) / double(cell.total));
    std::printf(" %8zu\n", cell.total);
  }
  std::printf(
      "\n  paper expectations: SBZ bits 100%% strict-correct; opcode/function\n"
      "  flips that land on unimplemented encodings are always fatal (illegal\n"
      "  instruction); mem-disp/Rb flips crash with high probability; branch\n"
      "  displacement flips on untaken branches are harmless.\n");
  return bench::json_write(opt.json, "fetch_fields") ? 0 : 1;
}
