// Fig. 7 reproduction: GemFI's overhead over unmodified gem5
// (paper Sec. V: between -0.1% and 3.3%, with 95% confidence intervals).
//
// Per the paper's methodology, both configurations simulate the same
// workload on the detailed (pipelined) model: the "GemFI" runs have the
// whole fault-injection machinery active — fi_activate bookkeeping, the
// per-fetch ThreadEnabledFault counting, per-stage queue scans — but inject
// no faults; the baseline runs have the FI hooks disabled entirely
// ("unmodified gem5"). We report mean wall-clock overhead of the simulation
// and its 95% CI over repeated interleaved measurements.
#include <chrono>
#include <cstdio>

#include "common.hpp"
#include "util/stats.hpp"

using namespace gemfi;

namespace {

double run_once(const apps::App& app, bool fi_enabled, bool predecode = true,
                std::uint64_t* committed = nullptr, bool fastpath = true,
                sim::CpuKind cpu = sim::CpuKind::Pipelined) {
  sim::SimConfig cfg;
  cfg.cpu = cpu;
  cfg.fi_enabled = fi_enabled;
  cfg.predecode = predecode;
  cfg.fastpath = fastpath;
  sim::Simulation s(cfg, app.program);
  s.spawn_main_thread();
  const auto t0 = std::chrono::steady_clock::now();
  const auto rr = s.run();
  const auto t1 = std::chrono::steady_clock::now();
  if (rr.reason != sim::ExitReason::AllThreadsExited) {
    std::fprintf(stderr, "unexpected exit: %s\n", sim::exit_reason_name(rr.reason));
    std::exit(1);
  }
  if (committed) *committed = rr.committed;
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv);
  bench::print_header("Fig. 7: GemFI overhead vs the unmodified simulator");

  const std::size_t reps = opt.per_cell(9, 3, 31);
  std::printf("  %zu interleaved repetitions per configuration, pipelined model\n\n", reps);
  std::printf("%-10s %12s %12s %12s %14s\n", "app", "base(s)", "gemfi(s)", "overhead%",
              "95% CI (pp)");

  for (const std::string& name : opt.app_list()) {
    const apps::App app = apps::build_app(name, opt.scale());
    // Warm-up pass for both configurations (page-cache/allocator effects).
    run_once(app, false);
    run_once(app, true);

    std::vector<double> base, gemfi_t, overhead;
    for (std::size_t r = 0; r < reps; ++r) {
      base.push_back(run_once(app, false));
      gemfi_t.push_back(run_once(app, true));
      overhead.push_back(util::percent_overhead(gemfi_t.back(), base.back()));
    }
    const auto sb = util::summarize(base);
    const auto sg = util::summarize(gemfi_t);
    const auto so = util::summarize(overhead);
    std::printf("%-10s %12.4f %12.4f %12.2f %14.2f\n", name.c_str(), sb.mean, sg.mean,
                so.mean, util::ci_half_width(so, 0.95));
    bench::json_record("base_seconds", sb.mean, "s", name);
    bench::json_record("gemfi_seconds", sg.mean, "s", name);
    bench::json_record("overhead_pct", so.mean, "%", name);
    bench::json_record("overhead_ci95_pp", util::ci_half_width(so, 0.95), "pp", name);
  }
  // Simulation-rate companion table: the predecoded-instruction cache is a
  // host-side speedup with zero simulated-outcome impact (the lockstep suite
  // proves bit-identity), so it is reported beside — not inside — the
  // overhead figure, which keeps both configurations on the default cache.
  std::printf("\n  simulation rate (pipelined, FI hooks on, no faults):\n");
  std::printf("%-10s %14s %14s %8s\n", "app", "insts/s", "insts/s(nopd)", "speedup");
  for (const std::string& name : opt.app_list()) {
    const apps::App app = apps::build_app(name, opt.scale());
    double on_s = 0.0, off_s = 0.0;
    std::uint64_t insts = 0;
    for (std::size_t r = 0; r < reps; ++r) {
      on_s += run_once(app, true, /*predecode=*/true, &insts);
      off_s += run_once(app, true, /*predecode=*/false);
    }
    const double on_rate = double(insts) * double(reps) / on_s;
    const double off_rate = double(insts) * double(reps) / off_s;
    std::printf("%-10s %14.0f %14.0f %7.2fx\n", name.c_str(), on_rate, off_rate,
                off_s / on_s);
    bench::json_record("insts_per_s_predecode", on_rate, "insts/s", name);
    bench::json_record("insts_per_s_no_predecode", off_rate, "insts/s", name);
  }

  // Timing-model fast-lane rate table: MRU cache hits + the fetch line
  // buffer, stall-cycle warping, and the batched TimingSimple dispatch loop
  // against their `--no-fastpath` per-tick baseline. FI hooks are off here
  // — the fault-free calibration/golden-run configuration whose cost the
  // fast lane targets (and where the TimingSimple batch engages).
  std::printf("\n  simulation rate, timing-model fast lane (FI hooks off):\n");
  std::printf("%-10s %-10s %14s %14s %8s\n", "app", "cpu", "insts/s", "insts/s(nofp)",
              "speedup");
  const struct {
    sim::CpuKind cpu;
    const char* name;
  } lanes[] = {{sim::CpuKind::TimingSimple, "timing"}, {sim::CpuKind::Pipelined, "pipelined"}};
  for (const std::string& name : opt.app_list()) {
    const apps::App app = apps::build_app(name, opt.scale());
    for (const auto& lane : lanes) {
      run_once(app, false, true, nullptr, true, lane.cpu);  // warm-up
      double on_s = 0.0, off_s = 0.0;
      std::uint64_t insts = 0;
      for (std::size_t r = 0; r < reps; ++r) {
        on_s += run_once(app, false, true, &insts, true, lane.cpu);
        off_s += run_once(app, false, true, nullptr, false, lane.cpu);
      }
      const double on_rate = double(insts) * double(reps) / on_s;
      const double off_rate = double(insts) * double(reps) / off_s;
      std::printf("%-10s %-10s %14.0f %14.0f %7.2fx\n", name.c_str(), lane.name, on_rate,
                  off_rate, off_s / on_s);
      const std::string cell = name + "/" + lane.name;
      bench::json_record("insts_per_s_fastpath", on_rate, "insts/s", cell);
      bench::json_record("insts_per_s_no_fastpath", off_rate, "insts/s", cell);
      bench::json_record("fastpath_speedup", off_s / on_s, "x", cell);
    }
  }

  std::printf("\n  paper: overhead ranges from -0.1%% to 3.3%% (not statistically\n"
              "  significant where negative); expect the same small-single-digit shape.\n");
  return bench::json_write(opt.json, "fig7_overhead") ? 0 : 1;
}
