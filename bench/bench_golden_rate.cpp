// Golden-run throughput: MIPS of the fault-free (golden/calibration)
// configuration across the guest apps, golden-path fast mode on vs off.
//
// This is the configuration every campaign pays over and over — the FI
// machinery fully armed (fi_activate bookkeeping, per-fetch counting) but no
// faults loaded — and the one the superblock tier targets: with fast mode on
// the atomic model batches through threaded-code traces whenever the fault
// manager is provably quiescent; with --no-fastmode it executes the per-tick
// interpreter loop with per-instruction hook calls. Both runs are verified
// against the app's golden output, and the FI-window fetch count (the
// calibration sampling space) is asserted identical across modes — a bench
// run that measured a semantically diverged tier would be worthless.
//
// Exit status is the JSON self-check (--json) plus the cross-mode identity
// checks; wall-clock thresholds are NOT gated here (CI hosts flake), the
// acceptance speedup is asserted explicitly via --min-speedup=<x>.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common.hpp"
#include "util/stats.hpp"

using namespace gemfi;

namespace {

struct GoldenRun {
  double seconds = 0.0;
  std::uint64_t committed = 0;
  std::uint64_t kernel_fetches = 0;  // FI-window length (calibration space)
  std::uint64_t ticks = 0;
};

GoldenRun run_once(const apps::App& app, bool fastmode) {
  sim::SimConfig cfg;
  cfg.cpu = sim::CpuKind::AtomicSimple;
  cfg.fi_enabled = true;  // golden runs keep the whole FI machinery armed
  cfg.fastmode = fastmode;
  sim::Simulation s(cfg, app.program);
  s.spawn_main_thread();
  const auto t0 = std::chrono::steady_clock::now();
  const sim::RunResult rr = s.run();
  const auto t1 = std::chrono::steady_clock::now();
  if (rr.reason != sim::ExitReason::AllThreadsExited) {
    std::fprintf(stderr, "unexpected exit: %s\n", sim::exit_reason_name(rr.reason));
    std::exit(1);
  }
  if (s.output(0) != app.golden_output) {
    std::fprintf(stderr, "golden output mismatch on '%s' (fastmode=%d)\n",
                 app.name.c_str(), int(fastmode));
    std::exit(1);
  }
  GoldenRun r;
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  r.committed = rr.committed;
  r.kernel_fetches = s.fault_manager().last_deactivated_fetched();
  r.ticks = rr.ticks;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  double min_speedup = 0.0;
  std::vector<char*> passthrough{argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--min-speedup=", 14) == 0)
      min_speedup = std::strtod(argv[i] + 14, nullptr);
    else
      passthrough.push_back(argv[i]);
  }
  const bench::Options opt =
      bench::parse_options(int(passthrough.size()), passthrough.data());
  bench::print_header("Golden-run throughput: superblock fast mode (atomic model)");

  const std::size_t reps = opt.per_cell(5, 2, 15);
  std::printf("  %zu interleaved repetitions per mode, FI machinery armed, no faults\n\n",
              reps);
  std::printf("%-10s %12s %12s %10s %10s\n", "app", "MIPS(fast)", "MIPS(slow)", "speedup",
              "ginsts");

  double worst_speedup = 1e300;
  bool identical = true;
  for (const std::string& name : opt.app_list()) {
    const apps::App app = apps::build_app(name, opt.scale());
    run_once(app, true);  // warm-up (page cache / allocator)
    run_once(app, false);
    double fast_s = 0.0, slow_s = 0.0;
    GoldenRun fast, slow;
    for (std::size_t r = 0; r < reps; ++r) {
      fast = run_once(app, true);
      slow = run_once(app, false);
      fast_s += fast.seconds;
      slow_s += slow.seconds;
    }
    // Cross-mode identity: same committed count, same simulated ticks, same
    // FI-window fetch count. The lockstep suite proves full digest equality;
    // this keeps the bench itself honest about what it compared.
    if (fast.committed != slow.committed || fast.ticks != slow.ticks ||
        fast.kernel_fetches != slow.kernel_fetches) {
      std::fprintf(stderr, "mode divergence on '%s': insts %llu/%llu ticks %llu/%llu "
                   "window %llu/%llu\n", name.c_str(),
                   (unsigned long long)fast.committed, (unsigned long long)slow.committed,
                   (unsigned long long)fast.ticks, (unsigned long long)slow.ticks,
                   (unsigned long long)fast.kernel_fetches,
                   (unsigned long long)slow.kernel_fetches);
      identical = false;
    }
    const double fast_mips = double(fast.committed) * double(reps) / fast_s / 1e6;
    const double slow_mips = double(slow.committed) * double(reps) / slow_s / 1e6;
    const double speedup = slow_s / fast_s;
    if (speedup < worst_speedup) worst_speedup = speedup;
    std::printf("%-10s %12.1f %12.1f %9.2fx %10llu\n", name.c_str(), fast_mips, slow_mips,
                speedup, (unsigned long long)fast.committed);
    bench::json_record("mips_fastmode", fast_mips, "MIPS", name);
    bench::json_record("mips_no_fastmode", slow_mips, "MIPS", name);
    bench::json_record("fastmode_speedup", speedup, "x", name);
    bench::json_record("golden_insts", double(fast.committed), "insts", name);
    bench::json_record("kernel_fetches", double(fast.kernel_fetches), "insts", name);
  }

  if (!identical) return 1;
  if (min_speedup > 0.0 && worst_speedup < min_speedup) {
    std::fprintf(stderr, "worst-case speedup %.2fx below required %.2fx\n", worst_speedup,
                 min_speedup);
    return 1;
  }
  return bench::json_write(opt.json, "golden_rate") ? 0 : 1;
}
