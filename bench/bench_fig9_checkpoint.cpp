// Checkpoint fast-path benchmark: per-experiment restore cost of the v2
// shared-baseline dirty-page restore vs the legacy full v1 deserialize.
//
// Two sections:
//   1. A synthetic sweep over checkpoint position (init iterations before
//      fi_read_init_all) x experiment length (kernel iterations after it),
//      which together set the pre/post-checkpoint ratio and the number of
//      pages an experiment dirties — the two knobs the restore cost
//      actually depends on.
//   2. The Fig. 8 campaign workload (the paper's six validation apps),
//      where the acceptance bar is a >= 5x lower per-experiment restore
//      cost for the shared-baseline path.
//
// Both paths run the same seeded faults and must produce identical outcome
// distributions (the dirty-page restore is bit-equivalent to a full one).
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "assembler/assembler.hpp"
#include "common.hpp"

using namespace gemfi;

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// Synthetic app: an LCG whose state is stored round-robin into a fixed
/// window, init_iters times before the checkpoint and kernel_iters times
/// after. window_bytes controls how many pages each phase dirties.
apps::App build_touch_app(std::uint64_t init_iters, std::uint64_t kernel_iters,
                          std::uint64_t window_bytes) {
  using namespace assembler;
  constexpr std::uint64_t kBase = 0x180000;  // clear of code + boot arena
  constexpr std::uint64_t kSeed = 0x5eed0002;

  Assembler as;
  const Label entry = as.here("main");
  apps::emit_boot(as);

  as.li_u(reg::s1, kSeed);               // LCG state
  as.li_u(reg::s3, apps::kLcgMul);
  as.li_u(reg::s4, apps::kLcgAdd);
  as.li_u(reg::s2, kBase);               // write pointer
  as.li_u(reg::s5, kBase + window_bytes);

  unsigned phase = 0;
  const auto emit_loop = [&](std::uint64_t iters) {
    as.li(reg::s0, std::int64_t(iters));
    const Label loop = as.here(phase == 0 ? "init_loop" : "kernel_loop");
    as.mulq(reg::s1, reg::s3, reg::s1);
    as.addq(reg::s1, reg::s4, reg::s1);
    as.stq(reg::s1, 0, reg::s2);
    as.addq_i(reg::s2, 8, reg::s2);
    as.cmpeq(reg::s2, reg::s5, reg::t1);
    const Label no_wrap = as.make_label(phase == 0 ? "init_nw" : "kernel_nw");
    as.beq(reg::t1, no_wrap);
    as.li_u(reg::s2, kBase);
    as.bind(no_wrap);
    as.subq_i(reg::s0, 1, reg::s0);
    as.bne(reg::s0, loop);
    ++phase;
  };

  emit_loop(init_iters);
  as.fi_read_init();            // checkpoint boundary
  as.mov_i(0, reg::a0);
  as.fi_activate();             // FI on
  emit_loop(kernel_iters);
  as.mov_i(0, reg::a0);
  as.fi_activate();             // FI off

  as.print_str("state=");
  as.print_int_r(reg::s1);
  apps::emit_newline(as);
  as.mov_i(0, reg::a0);
  as.exit_();

  apps::App app;
  app.name = "touch";
  app.program = as.finalize(entry);

  std::uint64_t state = kSeed;
  for (std::uint64_t i = 0; i < init_iters + kernel_iters; ++i) apps::lcg_next(state);
  char buf[64];
  std::snprintf(buf, sizeof buf, "state=%" PRId64 "\n", std::int64_t(state));
  app.golden_output = buf;
  // Any deviating output is an SDC: the result is a single exact integer.
  app.acceptable = [](const std::string&, double&) { return false; };
  return app;
}

struct RestoreCompare {
  double v1_ms = 0;           // mean per-experiment: construct + full v1 restore
  double v2_ms = 0;           // mean per-experiment: dirty-page restore
  double dirty_pages = 0;     // mean pages copied per dirty restore
  bool outcomes_match = true;
  [[nodiscard]] double speedup() const { return v2_ms > 0 ? v1_ms / v2_ms : 0; }
};

/// Run the same faults through both restore paths, timing only the restore
/// portion of each experiment.
RestoreCompare measure_restore(const campaign::CalibratedApp& ca,
                               const std::vector<fi::Fault>& faults,
                               const campaign::CampaignConfig& cfg) {
  RestoreCompare rc;
  sim::SimConfig scfg;
  scfg.cpu = cfg.cpu;
  scfg.fi_enabled = true;
  scfg.switch_to_atomic_after_fault = cfg.switch_to_atomic_after_fault;
  const std::uint64_t watchdog = cfg.watchdog_mult * ca.golden_ticks + 1'000'000;

  const auto image = chkpt::CheckpointImage::parse(ca.checkpoint);

  // A v1 blob of the same machine state, for the legacy path.
  chkpt::Checkpoint v1;
  {
    sim::Simulation s(scfg, ca.app.program);
    s.spawn_main_thread();
    image.restore_into(s);
    v1 = chkpt::Checkpoint::capture(s, {chkpt::CheckpointFormat::V1});
  }

  std::array<std::size_t, apps::kNumOutcomes> v1_counts{}, v2_counts{};

  // Legacy path: fresh Simulation + full v1 deserialize per experiment.
  double v1_total = 0;
  for (const fi::Fault& f : faults) {
    const auto t0 = Clock::now();
    sim::Simulation s(scfg, ca.app.program);
    s.spawn_main_thread();
    v1.restore_into(s);
    v1_total += ms_since(t0);
    s.fault_manager().load_faults({f});
    const sim::RunResult rr = s.run(watchdog);
    const auto c = campaign::classify(ca.app, rr, s.fault_manager(), s.output(0));
    ++v1_counts[std::size_t(c.outcome)];
  }
  rc.v1_ms = v1_total / double(faults.size());

  // Shared-baseline path: one persistent Simulation; the first restore is
  // full (amortized across the campaign, excluded), the rest copy only the
  // pages the previous experiment dirtied.
  double v2_total = 0;
  std::uint64_t dirty_total = 0;
  std::size_t dirty_restores = 0;
  sim::Simulation s(scfg, ca.app.program);
  s.spawn_main_thread();
  image.restore_into(s);
  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (i != 0) {
      const auto t0 = Clock::now();
      dirty_total += image.restore_dirty_into(s);
      v2_total += ms_since(t0);
      ++dirty_restores;
    }
    s.fault_manager().load_faults({faults[i]});
    const sim::RunResult rr = s.run(watchdog);
    const auto c = campaign::classify(ca.app, rr, s.fault_manager(), s.output(0));
    ++v2_counts[std::size_t(c.outcome)];
  }
  rc.v2_ms = dirty_restores == 0 ? 0 : v2_total / double(dirty_restores);
  rc.dirty_pages = dirty_restores == 0 ? 0 : double(dirty_total) / double(dirty_restores);
  rc.outcomes_match = v1_counts == v2_counts;
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv);
  bench::print_header(
      "Fig. 9 (extension): per-experiment restore cost, v1 full deserialize vs "
      "v2 shared-baseline dirty-page restore");

  auto cfg = opt.campaign_config();
  cfg.ckpt_format = chkpt::CheckpointFormat::V2;
  cfg.ckpt_compress = true;

  // --- 1. synthetic sweep: checkpoint position x experiment length ---------
  const std::size_t sweep_n = opt.per_cell(8, 4, 16);
  const std::vector<std::uint64_t> init_grid =
      opt.quick ? std::vector<std::uint64_t>{20'000}
                : std::vector<std::uint64_t>{5'000, 50'000, 200'000};
  const std::vector<std::uint64_t> kernel_grid =
      opt.quick ? std::vector<std::uint64_t>{5'000}
                : std::vector<std::uint64_t>{2'000, 20'000, 80'000};
  constexpr std::uint64_t kWindowBytes = 64 * 1024;  // 16 pages round-robin

  std::printf("  sweep: %zu experiments/cell, %" PRIu64 " KiB store window\n\n",
              sweep_n, kWindowBytes / 1024);
  std::printf("%10s %10s %8s %10s %12s %12s %10s %9s\n", "init", "kernel", "pages",
              "wire(KB)", "v1-rest(ms)", "v2-rest(ms)", "dirty-pg", "speedup");
  for (const std::uint64_t init : init_grid) {
    for (const std::uint64_t kernel : kernel_grid) {
      const auto ca =
          campaign::calibrate(build_touch_app(init, kernel, kWindowBytes), cfg);
      const auto faults =
          campaign::seeded_fault_set(opt.seed ^ init ^ kernel, sweep_n, ca.kernel_fetches);
      const auto rc = measure_restore(ca, faults, cfg);
      const auto cs = ca.checkpoint.stats();
      std::printf("%10" PRIu64 " %10" PRIu64 " %8" PRIu64 " %10.1f %12.3f %12.3f "
                  "%10.1f %8.1fx%s\n",
                  init, kernel, cs.pages_stored, double(cs.encoded_bytes) / 1024.0,
                  rc.v1_ms, rc.v2_ms, rc.dirty_pages, rc.speedup(),
                  rc.outcomes_match ? "" : "  OUTCOME-MISMATCH");
    }
  }

  // --- 2. the Fig. 8 campaign workload -------------------------------------
  const std::size_t n = opt.per_cell(12, 4, 100);
  std::printf("\n  Fig. 8 workload: %zu experiments per app\n\n", n);
  std::printf("%-10s %8s %10s %12s %12s %10s %9s\n", "app", "pages", "wire(KB)",
              "v1-rest(ms)", "v2-rest(ms)", "dirty-pg", "speedup");
  double worst = 0;
  bool first_app = true;
  bool all_match = true;
  for (const std::string& name : opt.app_list()) {
    const auto ca = campaign::calibrate(apps::build_app(name, opt.scale()), cfg);
    const std::uint64_t app_seed = opt.seed ^ (std::hash<std::string>{}(name) * 7);
    const auto faults = campaign::seeded_fault_set(app_seed, n, ca.kernel_fetches);
    const auto rc = measure_restore(ca, faults, cfg);
    const auto cs = ca.checkpoint.stats();
    std::printf("%-10s %8" PRIu64 " %10.1f %12.3f %12.3f %10.1f %8.1fx%s\n",
                name.c_str(), cs.pages_stored, double(cs.encoded_bytes) / 1024.0,
                rc.v1_ms, rc.v2_ms, rc.dirty_pages, rc.speedup(),
                rc.outcomes_match ? "" : "  OUTCOME-MISMATCH");
    if (first_app || rc.speedup() < worst) worst = rc.speedup();
    first_app = false;
    all_match = all_match && rc.outcomes_match;
    bench::json_record("v1_restore_ms", rc.v1_ms, "ms", name);
    bench::json_record("v2_restore_ms", rc.v2_ms, "ms", name);
    bench::json_record("restore_speedup", rc.speedup(), "x", name);
  }

  std::printf("\n  acceptance: shared-baseline restore >= 5x cheaper than full v1"
              " deserialize on every app: %s (worst %.1fx); outcome distributions"
              " identical: %s\n",
              worst >= 5.0 ? "PASS" : "FAIL", worst, all_match ? "PASS" : "FAIL");
  const bool json_ok = bench::json_write(opt.json, "fig9_checkpoint");
  return (worst >= 5.0 && all_match && json_ok) ? 0 : 1;
}
