// Syscall-fault outcome taxonomy: failure-propagation distribution vs
// injected behavior, per application — the Fig. 4/5-style experiment moved
// from the architectural layer to the OS interface.
//
// For each syscall-using app and each behavior family (forced errno, extra
// latency, torn/partial transfer, buffer corruption, plus a seeded random
// mix) we run experiments with one plan armed per run, sweeping the firing
// call index, and print where each run lands in the propagation taxonomy:
//   masked   — the guest's retry/fallback path absorbed the failure;
//   cascade  — N >= 1 later non-injected syscalls failed (the torn-log
//              scenario: partial writes displace the tail of the log into
//              ENOSPC on a capacity-constrained store);
//   unhandled— the guest gave up (nonzero exit) or died.
// Shape expectations:
//   * errno rows on the retrying writer mask almost everywhere (bounded
//     retries absorb a one-shot failure);
//   * partial rows on logwriter produce cascade(N>=2) once the file store
//     has less slack than the torn bytes — the bench shrinks the capacity
//     to records*32+8 exactly to expose this;
//   * latency rows land in masked with zero handler activity (ticks move,
//     contents do not);
//   * corrupt rows on read surface as masked (checksum rejects the record;
//     valid< written is an output-level effect, not a syscall error);
//   * failing logwriter's read-back reopen (open call #2, the one open that
//     happens inside the FI window) drives its error-exit path — unhandled;
//   * jacobi reports ~100% none everywhere: all of its syscalls (version
//     handshake, heap allocs) run during init, before the checkpoint that
//     opens the FI window — the same window contract the paper applies to
//     architectural faults.
#include <algorithm>
#include <array>
#include <cstdio>
#include <string>
#include <vector>

#include "common.hpp"

using namespace gemfi;

namespace {

struct BehaviorRow {
  const char* label;
  const char* plan;  // plan line with %IDX placeholder for the call index
};

std::string with_index(const char* plan, std::uint64_t idx) {
  std::string s(plan);
  const auto pos = s.find("%IDX");
  if (pos != std::string::npos) s.replace(pos, 4, std::to_string(idx));
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv);
  bench::print_header(
      "Syscall-fault taxonomy: failure propagation vs injected behavior");

  // Only the syscall-ABI apps are meaningful targets; everything else would
  // report 100% none.
  std::vector<std::string> apps = opt.apps;
  if (apps.empty()) apps = {"jacobi", "logwriter"};

  static constexpr BehaviorRow kRows[] = {
      {"errno:ENOENT(open)", "open@idx:2 errno:ENOENT"},
      {"errno:EIO(write)", "write@idx:%IDX errno:EIO"},
      {"errno:ENOSPC(write)", "write@idx:%IDX errno:ENOSPC"},
      {"latency(write)", "write@idx:%IDX latency:2000"},
      {"partial(write)", "write@idx:%IDX partial:0.5"},
      {"corrupt(read)", "read@idx:%IDX corrupt:2@0xbeef"},
      {"random", nullptr},  // seeded_syscall_plan draw per experiment
  };
  const std::size_t n = opt.per_cell(24, 8, 96);
  std::printf("  experiments per (app, behavior) cell: %zu\n\n", n);

  bool any_cascade2 = false;
  for (const std::string& name : apps) {
    campaign::CampaignConfig cfg = opt.campaign_config();
    cfg.campaign_seed = opt.seed;
    if (name == "logwriter") {
      // Capacity slack (8) below the torn bytes of a half-applied 32-byte
      // record: a partial write displaces the log tail into ENOSPC.
      const std::uint64_t records = opt.full ? 200 : 48;
      cfg.sys_file_capacity = records * 32 + 8;
    }
    const auto ca = campaign::calibrate(apps::build_app(name, opt.scale()), cfg);
    std::printf("-- %s (kernel: %llu fetched insts) --\n", name.c_str(),
                (unsigned long long)ca.kernel_fetches);
    std::printf("  %-20s %6s %8s %8s %10s %6s\n", "behavior", "none", "masked",
                "cascade", "unhandled", "maxN");

    // A fault the run never reaches: the experiments below measure the
    // syscall plans in isolation, not an architectural upset.
    fi::Fault never;
    never.time = ~0ull;

    for (const BehaviorRow& row : kRows) {
      campaign::CampaignConfig row_cfg = cfg;
      std::array<std::size_t, campaign::kNumSyscallOutcomes> counts{};
      unsigned max_cascade = 0;
      for (std::size_t i = 0; i < n; ++i) {
        std::vector<fi::SyscallFaultPlan> plans;
        if (row.plan) {
          plans.push_back(fi::parse_syscall_plan(with_index(row.plan, 1 + i % 16)));
        } else {
          plans.push_back(campaign::seeded_syscall_plan(opt.seed, i));
        }
        const auto er = campaign::run_experiment_with_retry(ca, never, row_cfg, &plans);
        ++counts[std::size_t(er.syscall_class.outcome)];
        if (er.syscall_class.cascade_len > max_cascade)
          max_cascade = er.syscall_class.cascade_len;
        if (er.syscall_class.outcome == campaign::SyscallOutcome::Cascade &&
            er.syscall_class.cascade_len >= 2)
          any_cascade2 = true;
      }
      std::printf("  %-20s %5.1f%% %7.1f%% %7.1f%% %9.1f%% %6u\n", row.label,
                  100.0 * double(counts[0]) / double(n),
                  100.0 * double(counts[1]) / double(n),
                  100.0 * double(counts[2]) / double(n),
                  100.0 * double(counts[3]) / double(n), max_cascade);
      const std::string config = name + "/" + row.label;
      bench::json_record("syscall_masked_fraction", double(counts[1]) / double(n),
                         "fraction", config);
      bench::json_record("syscall_cascade_fraction", double(counts[2]) / double(n),
                         "fraction", config);
      bench::json_record("syscall_unhandled_fraction", double(counts[3]) / double(n),
                         "fraction", config);
      bench::json_record("syscall_max_cascade", double(max_cascade), "calls", config);
    }
    std::printf("\n");
  }

  // The torn-log scenario is the point of the bench: a capacity-constrained
  // logwriter under partial writes must exhibit a failure chain of >= 2.
  if (!any_cascade2) {
    const bool logwriter_ran =
        std::find(apps.begin(), apps.end(), "logwriter") != apps.end();
    if (logwriter_ran) {
      std::fprintf(stderr,
                   "FAIL: no cascade(N>=2) observed on logwriter under partial "
                   "faults\n");
      return 1;
    }
  }
  return bench::json_write(opt.json, "syscall_taxonomy") ? 0 : 1;
}
