// Shared scaffolding for the per-figure/table bench binaries.
//
// Every bench accepts:
//   --quick        smallest sample sizes (CI smoke run)
//   --full         paper-scale inputs and Leveugle 99%/1% sample sizes
//   --n=<count>    override experiments per cell
//   --apps=a,b,c   restrict the benchmark set
//   --seed=<u64>   campaign RNG seed
//   --workers=<k>  local experiment parallelism (default: hardware)
//   --no-predecode disable the predecode fast path — the predecoded
//                  instruction cache and the atomic model's batched dispatch
//                  loop (A/B check: outcome distributions must be identical
//                  at equal seeds)
//   --no-fastpath  disable the timing-model fast lane — MRU cache hits, the
//                  fetch line buffer, stall-cycle warping and the batched
//                  TimingSimple loop (A/B check: tick-identical results)
//   --no-fastmode  disable golden-path fast mode — the superblock
//                  (threaded-code) tier above the atomic interpreter
//                  (A/B check: digest-, tick- and fi-log-identical results)
//   --json=<path>  additionally write every reported metric as a
//                  BENCH_<name>.json machine-readable record
// Default (no flags) is sized to finish on one core in a few minutes while
// preserving the shape of the paper's results.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/now_runner.hpp"
#include "campaign/runner.hpp"

namespace gemfi::bench {

struct Options {
  bool quick = false;
  bool full = false;
  std::uint64_t n_override = 0;
  std::vector<std::string> apps;  // empty = every registered app
  std::uint64_t seed = 20260706;
  unsigned workers = 0;  // 0 = hardware_concurrency
  bool predecode = true;
  bool fastpath = true;
  bool fastmode = true;
  std::string json;  // empty = no JSON output

  /// Experiments per cell for a given default/quick/full sizing.
  [[nodiscard]] std::size_t per_cell(std::size_t dflt, std::size_t quick_n,
                                     std::size_t full_n) const {
    if (n_override != 0) return std::size_t(n_override);
    if (quick) return quick_n;
    if (full) return full_n;
    return dflt;
  }

  [[nodiscard]] apps::AppScale scale() const {
    apps::AppScale s;
    s.paper = full;
    return s;
  }

  [[nodiscard]] campaign::CampaignConfig campaign_config() const;

  [[nodiscard]] std::vector<std::string> app_list() const;
};

Options parse_options(int argc, char** argv);

/// "name  12.3%  4.5% ..." row printing helpers. print_outcome_row also
/// feeds the JSON sink, so campaign benches get machine-readable records
/// without per-bench plumbing.
void print_header(const std::string& title);
void print_outcome_row(const std::string& label, const campaign::CampaignReport& report);
void print_outcome_legend();

// --- machine-readable results (--json=<path>) ---
//
// Benches report human-readable tables on stdout; with --json=<path> they
// additionally write every metric as one JSON record so campaign drivers and
// CI can consume results without screen-scraping:
//   {"bench": "BENCH_<name>", "records": [
//      {"metric": "...", "value": 1.25e7, "unit": "...", "config": "..."}]}

/// Append one record to the process-wide sink. Cheap; records are only
/// serialized if json_write() runs with a non-empty path.
void json_record(const std::string& metric, double value, const std::string& unit,
                 const std::string& config);

/// Serialize all recorded metrics to `path` as a BENCH_<name>.json document
/// and verify the written bytes parse (json_valid). No-op (returning true)
/// when `path` is empty; returns false on I/O or self-check failure.
bool json_write(const std::string& path, const std::string& bench_name);

/// Minimal JSON syntax validator (objects, arrays, strings, numbers, bools,
/// null) — enough for CI to assert the sink emits well-formed documents
/// without a JSON library dependency.
bool json_valid(const std::string& text);

}  // namespace gemfi::bench
